//! The dynamic shard-crossing tracker sink.
//!
//! [`ShardCrossings`] implements [`Probe`] and folds the produced/consumed
//! token stream and the memory-access stream through a static shard plan
//! ([`ShardSpec`], exported by `tyr-verify`'s P-pass): per shard, the
//! cumulative tokens delivered across the cut and the **peak in-flight
//! occupancy at boundary consumers** (produced − consumed over the nodes
//! that receive cross-shard tokens — the dynamic analogue of the P004
//! boundary live-state bound); plus a per-word conflict detector that
//! records every block pair observed plain-storing and touching the same
//! word, the runtime falsifier for P001 "proven disjoint" claims.
//!
//! The tracker is deliberately ignorant of `tyr-verify`: it is constructed
//! from plain vectors so `tyr-stats` keeps its dependency surface (ir +
//! nothing), and `repro shard` adapts a `ShardCertificate` into a
//! [`ShardSpec`].
//!
//! Conflict tracking keys block sets as 64-bit masks: accesses from blocks
//! with id ≥ 64 are not tracked (reported via
//! [`ShardCrossingsReport::untracked_blocks`] so the gate can refuse to
//! claim a clean run it did not fully observe).

use std::collections::HashMap;

use crate::probe::{Probe, ProbeEvent};

/// The static shard plan tables the tracker folds events through.
///
/// All vectors are indexed by static node id; nodes beyond a vector's
/// length are treated as shard 0 / not boundary / not a plain store.
#[derive(Debug, Clone, Default)]
pub struct ShardSpec {
    /// Number of shards in the plan.
    pub shards: u32,
    /// Per-node shard assignment.
    pub node_shard: Vec<u32>,
    /// Per-node flag: receives cross-shard tokens (boundary consumer).
    pub boundary: Vec<bool>,
    /// Per-node flag: plain `store` (not the commutative `storeAdd`).
    pub plain_store: Vec<bool>,
    /// Per-node concurrent-block id.
    pub node_block: Vec<u32>,
}

/// One shard's dynamic crossing observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFlow {
    /// The shard.
    pub shard: u32,
    /// Cumulative tokens delivered to the shard's boundary consumers.
    pub delivered: u64,
    /// Peak simultaneous occupancy (produced − consumed) over the shard's
    /// boundary consumers.
    pub peak_inflight: u64,
}

/// Two blocks observed touching the same word, at least one with a plain
/// store — the runtime contradiction witness for a P001 disjointness claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordConflict {
    /// Lower block id of the pair.
    pub block_a: u32,
    /// Higher block id of the pair.
    pub block_b: u32,
    /// A witness word address both blocks touched.
    pub addr: i64,
}

/// The tracker's end-of-run output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCrossingsReport {
    /// Number of shards in the plan.
    pub shards: u32,
    /// Per-shard flows, shard order.
    pub per_shard: Vec<ShardFlow>,
    /// Cross-block same-word conflicts (deduplicated per block pair, lowest
    /// witness address kept), sorted by block pair.
    pub conflicts: Vec<WordConflict>,
    /// Whether any memory access came from a block with id ≥ 64 (outside
    /// the conflict tracker's mask range) — if set, an empty `conflicts`
    /// list is not a proof of cleanliness.
    pub untracked_blocks: bool,
}

impl ShardCrossingsReport {
    /// The observed conflicts between blocks living in *different* shards
    /// under `shard_of` (block id → shard). These are the observations that
    /// can contradict a static disjointness claim.
    pub fn cross_shard_conflicts<'a>(
        &'a self,
        shard_of: impl Fn(u32) -> u32 + 'a,
    ) -> impl Iterator<Item = &'a WordConflict> + 'a {
        self.conflicts.iter().filter(move |c| shard_of(c.block_a) != shard_of(c.block_b))
    }

    /// Renders the per-shard flow table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "shard crossings ({} shard(s))", self.shards);
        for f in &self.per_shard {
            let _ = writeln!(
                out,
                "  shard {}: {} token(s) delivered across the cut, peak in-flight {}",
                f.shard, f.delivered, f.peak_inflight
            );
        }
        if self.conflicts.is_empty() {
            let _ = writeln!(
                out,
                "  conflicts: none observed{}",
                if self.untracked_blocks { " (some blocks untracked)" } else { "" }
            );
        } else {
            for c in &self.conflicts {
                let _ = writeln!(
                    out,
                    "  conflict: blocks cb{} and cb{} both touched word {} (plain store \
                     involved)",
                    c.block_a, c.block_b, c.addr
                );
            }
        }
        out
    }
}

/// The dynamic shard-crossing tracker. Construct it from a plan's tables
/// ([`ShardSpec`]), feed it to an engine's `with_probe` constructor (by
/// `&mut`), then call [`ShardCrossings::report`].
///
/// # Example
///
/// ```
/// use tyr_stats::probe::{Probe, ProbeEvent};
/// use tyr_stats::shard::{ShardCrossings, ShardSpec};
///
/// // Two nodes: node 0 in shard 0, node 1 in shard 1 receiving
/// // cross-shard tokens.
/// let spec = ShardSpec {
///     shards: 2,
///     node_shard: vec![0, 1],
///     boundary: vec![false, true],
///     plain_store: vec![false, false],
///     node_block: vec![0, 1],
/// };
/// let mut sc = ShardCrossings::new(spec);
/// sc.event(0, ProbeEvent::TokenProduced { node: 1 });
/// sc.event(1, ProbeEvent::TokenProduced { node: 1 });
/// sc.event(2, ProbeEvent::TokenConsumed { node: 1, count: 2 });
/// let r = sc.report();
/// assert_eq!(r.per_shard[1].delivered, 2);
/// assert_eq!(r.per_shard[1].peak_inflight, 2);
/// ```
#[derive(Debug)]
pub struct ShardCrossings {
    spec: ShardSpec,
    inflight: Vec<i64>,
    peak: Vec<i64>,
    delivered: Vec<u64>,
    /// Per word: (blocks that plain-stored it, blocks that touched it).
    words: HashMap<i64, (u64, u64)>,
    untracked_blocks: bool,
}

impl ShardCrossings {
    /// Creates a tracker for `spec`.
    pub fn new(spec: ShardSpec) -> Self {
        let n = spec.shards.max(1) as usize;
        ShardCrossings {
            spec,
            inflight: vec![0; n],
            peak: vec![0; n],
            delivered: vec![0; n],
            words: HashMap::new(),
            untracked_blocks: false,
        }
    }

    /// Folds the observations into a [`ShardCrossingsReport`], consuming
    /// the tracker.
    pub fn report(self) -> ShardCrossingsReport {
        let per_shard = (0..self.inflight.len())
            .map(|s| ShardFlow {
                shard: s as u32,
                delivered: self.delivered[s],
                peak_inflight: self.peak[s].max(0) as u64,
            })
            .collect();
        // Deduplicate conflicts per block pair, keeping the lowest witness
        // address; sort for deterministic output.
        let mut conflicts: Vec<WordConflict> = Vec::new();
        let mut sorted_words: Vec<(&i64, &(u64, u64))> = self.words.iter().collect();
        sorted_words.sort();
        for (&addr, &(stores, touched)) in sorted_words {
            if stores == 0 {
                continue;
            }
            for a in 0..64u32 {
                if stores & (1 << a) == 0 {
                    continue;
                }
                for b in 0..64u32 {
                    if b == a || touched & (1 << b) == 0 {
                        continue;
                    }
                    let (x, y) = (a.min(b), a.max(b));
                    if !conflicts.iter().any(|c| (c.block_a, c.block_b) == (x, y)) {
                        conflicts.push(WordConflict { block_a: x, block_b: y, addr });
                    }
                }
            }
        }
        conflicts.sort_by_key(|c| (c.block_a, c.block_b));
        ShardCrossingsReport {
            shards: self.spec.shards,
            per_shard,
            conflicts,
            untracked_blocks: self.untracked_blocks,
        }
    }

    fn shard_of(&self, node: u32) -> usize {
        (self.spec.node_shard.get(node as usize).copied().unwrap_or(0) as usize)
            .min(self.inflight.len().saturating_sub(1))
    }

    fn is_boundary(&self, node: u32) -> bool {
        self.spec.boundary.get(node as usize).copied().unwrap_or(false)
    }
}

impl Probe for ShardCrossings {
    fn event(&mut self, _cycle: u64, ev: ProbeEvent) {
        match ev {
            ProbeEvent::TokenProduced { node } if self.is_boundary(node) => {
                let s = self.shard_of(node);
                self.delivered[s] += 1;
                self.inflight[s] += 1;
                self.peak[s] = self.peak[s].max(self.inflight[s]);
            }
            ProbeEvent::TokenConsumed { node, count } if self.is_boundary(node) => {
                let s = self.shard_of(node);
                self.inflight[s] -= count as i64;
            }
            ProbeEvent::MemAccess { node, addr, write } => {
                let block = self.spec.node_block.get(node as usize).copied().unwrap_or(0);
                if block >= 64 {
                    self.untracked_blocks = true;
                    return;
                }
                let entry = self.words.entry(addr).or_insert((0, 0));
                entry.1 |= 1 << block;
                if write && self.spec.plain_store.get(node as usize).copied().unwrap_or(false) {
                    entry.0 |= 1 << block;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ShardSpec {
        // Nodes 0,1 in shard 0 (blocks 0,1); nodes 2,3 in shard 1
        // (block 2); node 2 is a boundary consumer, node 3 a plain store.
        ShardSpec {
            shards: 2,
            node_shard: vec![0, 0, 1, 1],
            boundary: vec![false, false, true, false],
            plain_store: vec![false, true, false, true],
            node_block: vec![0, 1, 2, 2],
        }
    }

    #[test]
    fn occupancy_peaks_per_shard() {
        let mut sc = ShardCrossings::new(spec());
        sc.event(0, ProbeEvent::TokenProduced { node: 2 });
        sc.event(0, ProbeEvent::TokenProduced { node: 2 });
        sc.event(1, ProbeEvent::TokenConsumed { node: 2, count: 2 });
        sc.event(2, ProbeEvent::TokenProduced { node: 2 });
        // Non-boundary production is not crossing traffic.
        sc.event(2, ProbeEvent::TokenProduced { node: 0 });
        let r = sc.report();
        assert_eq!(r.per_shard[0], ShardFlow { shard: 0, delivered: 0, peak_inflight: 0 });
        assert_eq!(r.per_shard[1], ShardFlow { shard: 1, delivered: 3, peak_inflight: 2 });
        assert!(r.render().contains("shard 1: 3 token(s)"));
    }

    #[test]
    fn same_word_cross_block_store_is_a_conflict() {
        let mut sc = ShardCrossings::new(spec());
        // Block 1 plain-stores word 40; block 2 loads it.
        sc.event(0, ProbeEvent::MemAccess { node: 1, addr: 40, write: true });
        sc.event(1, ProbeEvent::MemAccess { node: 2, addr: 40, write: false });
        // Same-word storeAdd-only traffic from one block: no conflict.
        sc.event(2, ProbeEvent::MemAccess { node: 2, addr: 99, write: true });
        let r = sc.report();
        assert_eq!(r.conflicts, vec![WordConflict { block_a: 1, block_b: 2, addr: 40 }]);
        // Blocks 1 and 2 live in different shards: the conflict crosses.
        let shard_of = |b: u32| if b <= 1 { 0 } else { 1 };
        assert_eq!(r.cross_shard_conflicts(shard_of).count(), 1);
    }

    #[test]
    fn storeadd_only_sharing_is_not_a_conflict() {
        let mut sc = ShardCrossings::new(spec());
        // Node 2 (block 2) writes via storeAdd (not flagged plain), node 1
        // (block 1) loads the same word: no plain store → no conflict.
        sc.event(0, ProbeEvent::MemAccess { node: 2, addr: 7, write: true });
        sc.event(1, ProbeEvent::MemAccess { node: 1, addr: 7, write: false });
        let r = sc.report();
        assert!(r.conflicts.is_empty(), "{:?}", r.conflicts);
    }

    #[test]
    fn conflicts_dedup_to_lowest_witness() {
        let mut sc = ShardCrossings::new(spec());
        for addr in [50, 12, 30] {
            sc.event(0, ProbeEvent::MemAccess { node: 1, addr, write: true });
            sc.event(1, ProbeEvent::MemAccess { node: 2, addr, write: false });
        }
        let r = sc.report();
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(r.conflicts[0].addr, 12);
    }

    #[test]
    fn high_block_ids_mark_untracked() {
        let mut sc = ShardCrossings::new(ShardSpec {
            shards: 1,
            node_shard: vec![0],
            boundary: vec![false],
            plain_store: vec![true],
            node_block: vec![70],
        });
        sc.event(0, ProbeEvent::MemAccess { node: 0, addr: 1, write: true });
        let r = sc.report();
        assert!(r.untracked_blocks);
        assert!(r.conflicts.is_empty());
    }
}
