//! Measurement utilities for the TYR reproduction.
//!
//! The paper (Sec. VI, *Metrics*) compares architectures on **parallelism**
//! (execution time in cycles, and the distribution of instructions-per-cycle)
//! and **locality** (the number of live tokens, sampled every cycle). This
//! crate provides the shared plumbing for those measurements:
//!
//! * [`Trace`] — a per-cycle time series of live state, with automatic
//!   down-sampling so multi-million-cycle runs stay small while peak and mean
//!   remain exact.
//! * [`IpcHistogram`] — an exact histogram of per-cycle IPC, from which the
//!   CDFs of Fig. 13 are derived.
//! * [`Cdf`] — cumulative distribution functions.
//! * [`gmean`] / [`speedup`] helpers used to reproduce the headline numbers
//!   of Fig. 12.
//! * [`ascii`] — terminal line/bar charts so every figure can be *seen* from
//!   the `repro` binary without plotting infrastructure.
//! * [`csv`] — tiny CSV writers for post-processing figure data externally.
//! * [`probe`] — the engine-wide observability layer: the [`Probe`] trait
//!   every engine emits typed events through (fires, tokens, tag traffic,
//!   block enter/exit, attributed stalls), the zero-cost [`NoProbe`]
//!   default, and the [`probe::ChromeTrace`] Perfetto/`chrome://tracing`
//!   JSON exporter.
//! * [`profile`] — the per-node aggregating profiler sink producing
//!   [`profile::NodeProfile`] tables and per-block stall heatmaps.
//! * [`locality`] — the working-set/reuse tracker sink: exact peak/mean
//!   live lines, per-block footprints, and an LRU reuse-distance CDF from
//!   the [`probe::ProbeEvent::MemAccess`] stream.
//! * [`shard`] — the shard-crossing tracker sink: per-shard delivered
//!   tokens and peak boundary in-flight occupancy keyed by a static shard
//!   plan, plus the per-word conflict detector that can falsify the
//!   P-pass's cross-shard disjointness claims at runtime.
//! * [`timeline`] — the cycle-windowed telemetry sink: per-window firings,
//!   token/tag traffic, open-stall levels by reason, memory traffic, and
//!   distinct cache lines, with bounded auto-coarsening — the time axis
//!   the aggregate sinks lack.
//! * [`hist`] — the dependency-free HDR-style log-bucketed
//!   [`LogHistogram`] (two sub-buckets per power of two) behind the
//!   timeline's firing-gap dispersion and `tyr-bench`'s wall-clock
//!   p50/p90/p99 reporting.
//! * [`stream`] — the line-buffered JSONL [`StreamProbe`] sink (schema
//!   `tyr-events/v1`): one validated record per probe event, streamable to
//!   any writer.
//! * [`json`] — the dependency-free JSON value/parser the trace exporter
//!   and its validation are built on.
//!
//! # Example
//!
//! ```
//! use tyr_stats::Trace;
//!
//! let mut trace = Trace::new();
//! for cycle in 0..10_000u64 {
//!     trace.record(cycle % 97); // live tokens this cycle
//! }
//! assert_eq!(trace.peak(), 96);
//! assert_eq!(trace.cycles(), 10_000);
//! ```

#![warn(missing_docs)]

pub mod ascii;
pub mod cdf;
pub mod csv;
pub mod hist;
pub mod json;
pub mod locality;
pub mod probe;
pub mod profile;
pub mod shard;
pub mod stream;
pub mod summary;
pub mod timeline;
pub mod trace;

pub use cdf::{Cdf, IpcHistogram};
pub use hist::LogHistogram;
pub use locality::{WorkingSet, WorkingSetReport};
pub use probe::{FaultKind, NoProbe, Probe, ProbeEvent, StallReason};
pub use profile::{NodeProfile, NodeProfiler, ProfileReport};
pub use shard::{ShardCrossings, ShardCrossingsReport, ShardSpec};
pub use stream::StreamProbe;
pub use summary::{gmean, mean, speedup, Summary};
pub use timeline::{Timeline, TimelineConfig, TimelineReport};
pub use trace::Trace;
