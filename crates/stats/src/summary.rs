//! Scalar summaries: geometric means and speedups (Fig. 12's headline
//! numbers: "By gmean, TYR is 68× faster vs. vN, 22.7× vs. sequential
//! dataflow, 21.7× vs. ordered, and 0.77× vs. unordered").

/// Geometric mean of strictly positive values.
///
/// Returns `None` if the slice is empty or any value is not strictly
/// positive (the gmean is undefined there).
pub fn gmean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Speedup of `ours` over `baseline`, both in cycles: `baseline / ours`.
///
/// # Panics
///
/// Panics if `ours` is zero.
pub fn speedup(baseline: u64, ours: u64) -> f64 {
    assert!(ours > 0, "speedup denominator must be non-zero");
    baseline as f64 / ours as f64
}

/// Accumulates per-application ratios and reports their geometric mean —
/// the aggregation used throughout Sec. VII.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    ratios: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { ratios: Vec::new() }
    }

    /// Adds one application's ratio (e.g. speedup or state reduction).
    pub fn push(&mut self, ratio: f64) {
        self.ratios.push(ratio);
    }

    /// Geometric mean of all pushed ratios.
    pub fn gmean(&self) -> Option<f64> {
        gmean(&self.ratios)
    }

    /// Number of ratios pushed.
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Whether no ratios have been pushed.
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// The raw ratios.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert_eq!(gmean(&[]), None);
        assert_eq!(gmean(&[1.0, 0.0]), None);
        assert_eq!(gmean(&[1.0, -2.0]), None);
        let g = gmean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_is_scale_invariant() {
        let a = gmean(&[1.0, 10.0, 100.0]).unwrap();
        let b = gmean(&[2.0, 20.0, 200.0]).unwrap();
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_ratio() {
        assert!((speedup(680, 10) - 68.0).abs() < 1e-12);
        assert!((speedup(77, 100) - 0.77).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn speedup_zero_denominator_panics() {
        let _ = speedup(1, 0);
    }

    #[test]
    fn summary_accumulates() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        s.push(2.0);
        s.push(8.0);
        assert_eq!(s.len(), 2);
        assert!((s.gmean().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(s.ratios(), &[2.0, 8.0]);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn gmean_single_value_is_identity() {
        assert!((gmean(&[7.5]).unwrap() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn gmean_rejects_non_finite() {
        assert_eq!(gmean(&[1.0, f64::INFINITY]), None);
        assert_eq!(gmean(&[1.0, f64::NAN]), None);
    }
}
