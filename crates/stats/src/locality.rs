//! The dynamic working-set / reuse tracker sink.
//!
//! [`WorkingSet`] implements [`Probe`] and folds the
//! [`ProbeEvent::MemAccess`] stream into a [`WorkingSetReport`]: exact peak
//! and mean *live lines* (a line is live from its first to its last access),
//! per-block footprints (distinct lines touched by each concurrent block's
//! nodes), and an LRU reuse-distance CDF. It is the dynamic half of the
//! locality story: the static W-pass in `tyr-verify` predicts bounds on
//! these quantities from graph shape, and `repro verify` checks that every
//! static bound dominates the observation here.
//!
//! Addresses are grouped into cache lines of [`WorkingSet::DEFAULT_LINE_WORDS`]
//! words (configurable with [`WorkingSet::with_line_words`]); line 0 exists —
//! the memory image's guard word lives there — but kernels never touch it.
//! The tracker tolerates the `ooo` engine's non-monotone issue cycles by
//! keeping per-line min/max access cycles rather than assuming order.

use std::collections::{BTreeMap, HashMap};

use crate::ascii;
use crate::cdf::Cdf;
use crate::probe::{Probe, ProbeEvent};

/// First/last access cycle and access count of one line.
#[derive(Debug, Clone, Copy)]
struct LineInfo {
    first: u64,
    last: u64,
}

/// Distinct lines and access count attributed to one concurrent block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockFootprint {
    /// Block id.
    pub block: u32,
    /// Block name (empty blocks render as `block<N>`).
    pub name: String,
    /// Distinct lines touched by the block's nodes.
    pub lines: u64,
    /// Total accesses issued by the block's nodes.
    pub accesses: u64,
}

/// The tracker's end-of-run output.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkingSetReport {
    /// Words per line used to bucket addresses.
    pub line_words: u64,
    /// Architectural loads observed.
    pub loads: u64,
    /// Architectural stores observed (`store` and `store_add`).
    pub stores: u64,
    /// Total distinct lines touched — the run's whole memory footprint.
    pub distinct_lines: u64,
    /// Peak number of simultaneously live lines (live = between first and
    /// last access), the dynamic analogue of the W001/W002 bounds.
    pub peak_live_lines: u64,
    /// Mean live lines over the run's cycles.
    pub mean_live_lines: f64,
    /// Per-block footprints, in block order.
    pub blocks: Vec<BlockFootprint>,
    /// LRU reuse-distance CDF over *reuses* (cold misses excluded; their
    /// count is exactly [`WorkingSetReport::distinct_lines`]).
    pub reuse: Cdf,
}

impl WorkingSetReport {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Renders the working-set summary, per-block footprint chart, and
    /// reuse-distance quantiles.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("working set (line = {} words)\n", self.line_words));
        out.push_str(&format!(
            "  accesses: {} loads, {} stores; footprint {} line(s) ({} words)\n",
            ascii::fmt_count(self.loads as f64),
            ascii::fmt_count(self.stores as f64),
            self.distinct_lines,
            self.distinct_lines * self.line_words,
        ));
        out.push_str(&format!(
            "  live lines: peak {}, mean {:.1}\n",
            self.peak_live_lines, self.mean_live_lines
        ));
        let q = |p: f64| {
            self.reuse.quantile(p).map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into())
        };
        out.push_str(&format!(
            "  reuse distance (lines, LRU): p50 {} p90 {} p99 {}; {} cold miss(es)\n",
            q(0.5),
            q(0.9),
            q(0.99),
            self.distinct_lines
        ));
        let rows: Vec<(String, f64)> = self
            .blocks
            .iter()
            .filter(|b| b.lines > 0)
            .map(|b| (b.name.clone(), b.lines as f64))
            .collect();
        if !rows.is_empty() {
            out.push_str(&ascii::bar_chart("footprint per block (lines)", &rows, width, false));
        }
        out
    }
}

/// The working-set tracker. Feed it to an engine's `with_probe` constructor
/// (by `&mut`), then call [`WorkingSet::report`] with the run's final cycle.
///
/// # Example
///
/// ```
/// use tyr_stats::locality::WorkingSet;
/// use tyr_stats::probe::{Probe, ProbeEvent};
///
/// let mut ws = WorkingSet::new();
/// ws.declare_block(0, "main");
/// ws.declare_node(3, "load a", 0);
/// ws.event(0, ProbeEvent::MemAccess { node: 3, addr: 1, write: false });
/// ws.event(1, ProbeEvent::MemAccess { node: 3, addr: 2, write: false }); // same line
/// ws.event(2, ProbeEvent::MemAccess { node: 3, addr: 64, write: true });
/// let r = ws.report(3);
/// assert_eq!((r.loads, r.stores, r.distinct_lines), (2, 1, 2));
/// ```
#[derive(Debug)]
pub struct WorkingSet {
    line_words: u64,
    node_block: HashMap<u32, u32>,
    block_names: BTreeMap<u32, String>,
    lines: HashMap<i64, LineInfo>,
    block_lines: BTreeMap<u32, std::collections::HashSet<i64>>,
    block_accesses: BTreeMap<u32, u64>,
    /// LRU stack of lines, most recent first. Linear scans keep the tracker
    /// simple; the cost is O(accesses × resident lines), fine at the scales
    /// the probed subcommands run at (the zero-cost `NoProbe` path is what
    /// paper-scale sweeps use).
    lru: Vec<i64>,
    distances: Vec<f64>,
    loads: u64,
    stores: u64,
}

impl Default for WorkingSet {
    fn default() -> Self {
        WorkingSet::new()
    }
}

impl WorkingSet {
    /// Default line size: 8 words = 64 bytes of i64s, the conventional
    /// cache-line size.
    pub const DEFAULT_LINE_WORDS: u64 = 8;

    /// Creates a tracker with the default line size.
    pub fn new() -> Self {
        WorkingSet {
            line_words: Self::DEFAULT_LINE_WORDS,
            node_block: HashMap::new(),
            block_names: BTreeMap::new(),
            lines: HashMap::new(),
            block_lines: BTreeMap::new(),
            block_accesses: BTreeMap::new(),
            lru: Vec::new(),
            distances: Vec::new(),
            loads: 0,
            stores: 0,
        }
    }

    /// Sets the line size in words (clamped to at least 1).
    pub fn with_line_words(mut self, words: u64) -> Self {
        self.line_words = words.max(1);
        self
    }

    /// Folds the access stream into a [`WorkingSetReport`]. `final_cycle`
    /// bounds the mean-live-lines denominator (a line is live from its first
    /// to its last access cycle).
    pub fn report(self, final_cycle: u64) -> WorkingSetReport {
        // Peak live lines by interval sweep: +1 at first access, -1 just
        // after the last.
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(self.lines.len() * 2);
        let mut live_cycles = 0u128;
        for info in self.lines.values() {
            events.push((info.first, 1));
            events.push((info.last + 1, -1));
            live_cycles += (info.last - info.first + 1) as u128;
        }
        events.sort_unstable();
        let (mut cur, mut peak) = (0i64, 0i64);
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        let blocks = self
            .block_names
            .iter()
            .map(|(&block, name)| BlockFootprint {
                block,
                name: if name.is_empty() { format!("block{block}") } else { name.clone() },
                lines: self.block_lines.get(&block).map_or(0, |s| s.len() as u64),
                accesses: self.block_accesses.get(&block).copied().unwrap_or(0),
            })
            .collect();
        WorkingSetReport {
            line_words: self.line_words,
            loads: self.loads,
            stores: self.stores,
            distinct_lines: self.lines.len() as u64,
            peak_live_lines: peak.max(0) as u64,
            mean_live_lines: live_cycles as f64 / final_cycle.max(1) as f64,
            blocks,
            reuse: Cdf::from_samples(self.distances),
        }
    }
}

impl Probe for WorkingSet {
    fn declare_block(&mut self, block: u32, name: &str) {
        self.block_names.insert(block, name.to_string());
    }

    fn declare_node(&mut self, node: u32, _label: &str, block: u32) {
        self.node_block.insert(node, block);
        self.block_names.entry(block).or_default();
    }

    fn event(&mut self, cycle: u64, ev: ProbeEvent) {
        let ProbeEvent::MemAccess { node, addr, write } = ev else { return };
        if write {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
        let line = addr.div_euclid(self.line_words as i64);
        match self.lines.get_mut(&line) {
            Some(info) => {
                info.first = info.first.min(cycle);
                info.last = info.last.max(cycle);
            }
            None => {
                self.lines.insert(line, LineInfo { first: cycle, last: cycle });
            }
        }
        let block = self.node_block.get(&node).copied().unwrap_or(0);
        self.block_lines.entry(block).or_default().insert(line);
        *self.block_accesses.entry(block).or_insert(0) += 1;
        // LRU stack distance: position of the line before this access. A
        // cold miss records nothing; cold misses are counted exactly by
        // `distinct_lines`.
        if let Some(p) = self.lru.iter().position(|&l| l == line) {
            self.distances.push(p as f64);
            self.lru.remove(p);
        }
        self.lru.insert(0, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(ws: &mut WorkingSet, cycle: u64, node: u32, addr: i64, write: bool) {
        ws.event(cycle, ProbeEvent::MemAccess { node, addr, write });
    }

    #[test]
    fn counts_and_footprint() {
        let mut ws = WorkingSet::new();
        ws.declare_block(0, "main");
        ws.declare_block(1, "loop");
        ws.declare_node(0, "load", 0);
        ws.declare_node(1, "store", 1);
        access(&mut ws, 0, 0, 0, false);
        access(&mut ws, 1, 0, 7, false); // same line as addr 0
        access(&mut ws, 2, 1, 8, true); // next line
        access(&mut ws, 3, 1, 800, true);
        let r = ws.report(4);
        assert_eq!((r.loads, r.stores), (2, 2));
        assert_eq!(r.accesses(), 4);
        assert_eq!(r.distinct_lines, 3);
        let main = r.blocks.iter().find(|b| b.name == "main").unwrap();
        assert_eq!((main.lines, main.accesses), (1, 2));
        let looped = r.blocks.iter().find(|b| b.name == "loop").unwrap();
        assert_eq!((looped.lines, looped.accesses), (2, 2));
        assert!(r.render(40).contains("footprint 3 line(s)"));
    }

    #[test]
    fn live_lines_peak_and_mean() {
        let mut ws = WorkingSet::new();
        ws.declare_node(0, "n", 0);
        // Line A live cycles 0..=3, line B live 2..=2: peak overlap 2.
        access(&mut ws, 0, 0, 0, false);
        access(&mut ws, 3, 0, 0, false);
        access(&mut ws, 2, 0, 64, true);
        let r = ws.report(4);
        assert_eq!(r.peak_live_lines, 2);
        // (4 + 1) live line-cycles over 4 cycles.
        assert!((r.mean_live_lines - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_distance_is_lru_stack_depth() {
        let mut ws = WorkingSet::new();
        ws.declare_node(0, "n", 0);
        // Touch lines 0, 1, 2 (all cold), then line 0 again: two lines in
        // between, so the reuse lands at LRU depth 2.
        for (cycle, addr) in [(0u64, 0i64), (1, 8), (2, 16), (3, 0)] {
            access(&mut ws, cycle, 0, addr, false);
        }
        let r = ws.report(5);
        // One reuse at distance 2 (lines 1 and 2 were touched since line 0).
        assert_eq!(r.reuse.points().len(), 1);
        assert_eq!(r.reuse.quantile(1.0), Some(2.0));
        assert_eq!(r.distinct_lines, 3);
    }

    #[test]
    fn tolerates_non_monotone_cycles() {
        let mut ws = WorkingSet::new();
        ws.declare_node(0, "n", 0);
        access(&mut ws, 10, 0, 0, false);
        access(&mut ws, 2, 0, 0, false); // ooo issue cycle stepping back
        let r = ws.report(12);
        assert_eq!(r.distinct_lines, 1);
        assert_eq!(r.peak_live_lines, 1);
        assert!((r.mean_live_lines - 9.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn negative_addresses_bucket_cleanly() {
        // div_euclid keeps adjacent negative addresses in one line instead
        // of straddling zero.
        let mut ws = WorkingSet::new();
        access(&mut ws, 0, 0, -1, false);
        access(&mut ws, 1, 0, -8, false);
        let r = ws.report(2);
        assert_eq!(r.distinct_lines, 1);
    }
}
