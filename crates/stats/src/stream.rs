//! Streaming JSONL export of the probe event stream.
//!
//! [`StreamProbe`] writes one JSON record per line to any [`std::io::Write`]
//! sink — one validated record per probe event, preceded by a header and
//! the block/node declarations — so a run can be tailed, piped, or archived
//! without buffering the whole stream in memory. The JSON is hand-rolled
//! like the Chrome exporter (DESIGN.md §8: no dependencies).
//!
//! # Schema `tyr-events/v1`
//!
//! Line 1 is the header: `{"schema":"tyr-events/v1","kinds":[...]}`.
//! Declarations follow as `{"decl":"block","id":N,"name":S}` and
//! `{"decl":"node","id":N,"label":S,"block":N}`. Every subsequent line is
//! one event record carrying the cycle (`"c"`), the taxonomy kind name
//! (`"k"`, see [`EventKind::name`]), and the kind's payload fields:
//!
//! | kind | fields |
//! |------|--------|
//! | `fired`, `produced` | `node` |
//! | `consumed` | `node`, `n` |
//! | `tag-allocated`, `tag-freed` | `space`, `tag` |
//! | `tag-changed` | `node`, `from`, `to` |
//! | `block-enter`, `block-exit` | `block`, `tag` |
//! | `stall-begin` | `node`, `tag`, `reason` |
//! | `stall-end` | `node`, `tag` |
//! | `fault-injected` | `node`, `fault` |
//! | `mem-access` | `node`, `addr`, `w` (1 = store, 0 = load) |
//! | `mem-miss` | `node`, `addr`, `l2` (1 = missed L2 too, 0 = L2 hit) |
//!
//! The number of records with a `"c"` field equals the total event count a
//! [`crate::probe::CountingProbe`] sees on the same run — the parity the CI
//! timeline gate checks. [`validate`] re-parses a document line by line and
//! returns the per-kind counts.
//!
//! [`Probe::event`] cannot return an error, so I/O failures are latched:
//! the sink stops writing after the first failure and [`StreamProbe::finish`]
//! surfaces it.

use std::collections::HashMap;
use std::io::Write;

use crate::json::{self, Json};
use crate::probe::{EventKind, FaultKind, Probe, ProbeEvent, StallReason};

/// The schema identifier written to and required of every JSONL document.
pub const SCHEMA: &str = "tyr-events/v1";

/// The streaming JSONL probe sink. See the module docs for the record
/// layout.
///
/// # Example
///
/// ```
/// use tyr_stats::probe::{Probe, ProbeEvent};
/// use tyr_stats::stream::{self, StreamProbe};
///
/// let mut s = StreamProbe::new(Vec::new());
/// s.declare_node(3, "mul", 0);
/// s.event(7, ProbeEvent::NodeFired { node: 3 });
/// let bytes = s.finish().unwrap();
/// let text = String::from_utf8(bytes).unwrap();
/// let summary = stream::validate(&text).unwrap();
/// assert_eq!(summary.events, 1);
/// ```
#[derive(Debug)]
pub struct StreamProbe<W: Write> {
    out: W,
    buf: String,
    events: u64,
    err: Option<String>,
}

impl<W: Write> StreamProbe<W> {
    /// Wraps a writer and emits the schema header line. Callers streaming
    /// to a file should pass a `BufWriter`; each record is a single
    /// `write_all` of one line.
    pub fn new(out: W) -> Self {
        let mut s = StreamProbe { out, buf: String::with_capacity(128), events: 0, err: None };
        s.buf.push_str("{\"schema\":\"");
        s.buf.push_str(SCHEMA);
        s.buf.push_str("\",\"kinds\":[");
        for (i, k) in EventKind::ALL.iter().enumerate() {
            if i > 0 {
                s.buf.push(',');
            }
            s.buf.push('"');
            s.buf.push_str(k.name());
            s.buf.push('"');
        }
        s.buf.push_str("]}");
        s.write_line();
        s
    }

    /// Event records written so far (excludes the header and declarations).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Returns the first latched write error, or the flush error.
    pub fn finish(mut self) -> Result<W, String> {
        if let Some(e) = self.err {
            return Err(e);
        }
        self.out.flush().map_err(|e| format!("flushing event stream: {e}"))?;
        Ok(self.out)
    }

    /// Writes `self.buf` plus a newline, latching the first error.
    fn write_line(&mut self) {
        if self.err.is_none() {
            self.buf.push('\n');
            if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
                self.err = Some(format!("writing event stream: {e}"));
            }
        }
        self.buf.clear();
    }
}

impl<W: Write> Probe for StreamProbe<W> {
    fn declare_block(&mut self, block: u32, name: &str) {
        self.buf.push_str(&format!("{{\"decl\":\"block\",\"id\":{block},\"name\":"));
        json::write_str(&mut self.buf, name);
        self.buf.push('}');
        self.write_line();
    }

    fn declare_node(&mut self, node: u32, label: &str, block: u32) {
        self.buf.push_str(&format!("{{\"decl\":\"node\",\"id\":{node},\"label\":"));
        json::write_str(&mut self.buf, label);
        self.buf.push_str(&format!(",\"block\":{block}}}"));
        self.write_line();
    }

    fn event(&mut self, cycle: u64, ev: ProbeEvent) {
        use std::fmt::Write as _;
        self.events += 1;
        let b = &mut self.buf;
        let _ = write!(b, "{{\"c\":{cycle},\"k\":\"{}\"", ev.kind().name());
        let _ = match ev {
            ProbeEvent::NodeFired { node } | ProbeEvent::TokenProduced { node } => {
                write!(b, ",\"node\":{node}")
            }
            ProbeEvent::TokenConsumed { node, count } => {
                write!(b, ",\"node\":{node},\"n\":{count}")
            }
            ProbeEvent::TagAllocated { space, tag } | ProbeEvent::TagFreed { space, tag } => {
                write!(b, ",\"space\":{space},\"tag\":{tag}")
            }
            ProbeEvent::TagChanged { node, from, to } => {
                write!(b, ",\"node\":{node},\"from\":{from},\"to\":{to}")
            }
            ProbeEvent::BlockEnter { block, tag } | ProbeEvent::BlockExit { block, tag } => {
                write!(b, ",\"block\":{block},\"tag\":{tag}")
            }
            ProbeEvent::StallBegin { node, tag, reason } => {
                write!(b, ",\"node\":{node},\"tag\":{tag},\"reason\":\"{}\"", reason.label())
            }
            ProbeEvent::StallEnd { node, tag } => write!(b, ",\"node\":{node},\"tag\":{tag}"),
            ProbeEvent::FaultInjected { node, kind } => {
                write!(b, ",\"node\":{node},\"fault\":\"{}\"", kind.label())
            }
            ProbeEvent::MemAccess { node, addr, write: w } => {
                write!(b, ",\"node\":{node},\"addr\":{addr},\"w\":{}", u8::from(w))
            }
            ProbeEvent::MemMiss { node, addr, l2 } => {
                write!(b, ",\"node\":{node},\"addr\":{addr},\"l2\":{}", u8::from(l2))
            }
        };
        b.push('}');
        self.write_line();
    }
}

/// What [`validate`] found in a well-formed document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSummary {
    /// Event records (lines with a `"c"` field) — equals the event count a
    /// `CountingProbe` sees on the same run.
    pub events: u64,
    /// Declaration records.
    pub decls: u64,
    /// Event counts per taxonomy kind name.
    pub kinds: HashMap<String, u64>,
}

/// Validates a `tyr-events/v1` JSONL document line by line: the header's
/// schema tag, every declaration's fields, and every event record's kind
/// and kind-specific payload fields.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate(text: &str) -> Result<StreamSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty document")?;
    let header = Json::parse(header).map_err(|e| format!("line 1: {e}"))?;
    if header.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("line 1: missing or wrong \"schema\" (want {SCHEMA:?})"));
    }

    let mut summary = StreamSummary { events: 0, decls: 0, kinds: HashMap::new() };
    for (i, line) in lines {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        let rec = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let num = |key: &str| {
            rec.get(key)
                .and_then(Json::as_f64)
                .map(|_| ())
                .ok_or_else(|| format!("line {n}: missing numeric \"{key}\""))
        };
        if let Some(decl) = rec.get("decl").and_then(Json::as_str) {
            match decl {
                "block" => {
                    num("id")?;
                    rec.get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {n}: block decl has no name"))?;
                }
                "node" => {
                    num("id")?;
                    num("block")?;
                    rec.get("label")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {n}: node decl has no label"))?;
                }
                other => return Err(format!("line {n}: unknown decl {other:?}")),
            }
            summary.decls += 1;
            continue;
        }
        num("c")?;
        let kind = rec
            .get("k")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: event record has no \"k\""))?;
        let required: &[&str] = match kind {
            "fired" | "produced" => &["node"],
            "consumed" => &["node", "n"],
            "tag-allocated" | "tag-freed" => &["space", "tag"],
            "tag-changed" => &["node", "from", "to"],
            "block-enter" | "block-exit" => &["block", "tag"],
            "stall-begin" => {
                let reason = rec
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {n}: stall-begin has no reason"))?;
                if !StallReason::ALL.iter().any(|r| r.label() == reason) {
                    return Err(format!("line {n}: unknown stall reason {reason:?}"));
                }
                &["node", "tag"]
            }
            "stall-end" => &["node", "tag"],
            "fault-injected" => {
                let fault = rec
                    .get("fault")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {n}: fault-injected has no fault"))?;
                if !FaultKind::ALL.iter().any(|k| k.label() == fault) {
                    return Err(format!("line {n}: unknown fault class {fault:?}"));
                }
                &["node"]
            }
            "mem-access" => &["node", "addr", "w"],
            "mem-miss" => &["node", "addr", "l2"],
            other => return Err(format!("line {n}: unknown event kind {other:?}")),
        };
        for key in required {
            num(key)?;
        }
        summary.events += 1;
        *summary.kinds.entry(kind.to_string()).or_insert(0) += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut s = StreamProbe::new(Vec::new());
        s.declare_block(0, "main");
        s.declare_block(1, "loop \"inner\"");
        s.declare_node(0, "load a", 0);
        s.declare_node(1, "mul", 1);
        s.event(0, ProbeEvent::NodeFired { node: 0 });
        s.event(1, ProbeEvent::TokenProduced { node: 1 });
        s.event(2, ProbeEvent::TokenConsumed { node: 1, count: 2 });
        s.event(2, ProbeEvent::TagAllocated { space: 1, tag: 3 });
        s.event(3, ProbeEvent::BlockEnter { block: 1, tag: 3 });
        s.event(4, ProbeEvent::StallBegin { node: 1, tag: 3, reason: StallReason::TagStarved });
        s.event(5, ProbeEvent::StallEnd { node: 1, tag: 3 });
        s.event(6, ProbeEvent::TagChanged { node: 1, from: 3, to: 0 });
        s.event(7, ProbeEvent::TagFreed { space: 1, tag: 3 });
        s.event(7, ProbeEvent::BlockExit { block: 1, tag: 3 });
        s.event(8, ProbeEvent::FaultInjected { node: 1, kind: FaultKind::MemDelay });
        s.event(9, ProbeEvent::MemAccess { node: 0, addr: -8, write: true });
        s.event(9, ProbeEvent::MemMiss { node: 0, addr: -8, l2: true });
        assert_eq!(s.events(), 13);
        String::from_utf8(s.finish().unwrap()).unwrap()
    }

    #[test]
    fn full_taxonomy_round_trips_and_validates() {
        let text = sample();
        let summary = validate(&text).expect("sample validates");
        assert_eq!(summary.events, 13);
        assert_eq!(summary.decls, 4);
        for kind in EventKind::ALL {
            assert_eq!(
                summary.kinds.get(kind.name()).copied(),
                Some(1),
                "kind {} missing",
                kind.name()
            );
        }
        // Every line is independently valid JSON.
        for line in text.lines() {
            Json::parse(line).expect("each line parses");
        }
    }

    #[test]
    fn labels_are_escaped() {
        let text = sample();
        assert!(text.contains(r#""name":"loop \"inner\"""#), "{text}");
    }

    #[test]
    fn wrong_schema_rejected() {
        let mut text = sample();
        text = text.replacen(SCHEMA, "tyr-events/v0", 1);
        assert!(validate(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn missing_payload_field_rejected() {
        let text = format!(
            "{}\n{{\"c\":4,\"k\":\"consumed\",\"node\":1}}\n",
            sample().lines().next().unwrap()
        );
        assert!(validate(&text).unwrap_err().contains("\"n\""));
    }

    #[test]
    fn unknown_kind_rejected() {
        let text = format!("{}\n{{\"c\":4,\"k\":\"warped\"}}\n", sample().lines().next().unwrap());
        assert!(validate(&text).unwrap_err().contains("unknown event kind"));
    }

    #[test]
    fn write_errors_are_latched_and_surfaced() {
        use std::io;
        #[derive(Debug)]
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut s = StreamProbe::new(Broken);
        s.event(0, ProbeEvent::NodeFired { node: 0 });
        let err = s.finish().unwrap_err();
        assert!(err.contains("disk on fire"), "{err}");
    }
}
