//! The engine-wide event probe layer.
//!
//! Every engine in `tyr-sim` is generic over a [`Probe`] and emits typed
//! [`ProbeEvent`]s at the exact points where it already decides them: a node
//! fires, a token is produced or consumed, a tag is allocated / freed /
//! changed, a concurrent-block context is entered or exited, and — most
//! importantly for the paper's argument — a node *stalls*, with the reason
//! ([`StallReason`]) attributed at the stall site (partial-match wait,
//! tag starvation, output back pressure).
//!
//! The default probe is [`NoProbe`], whose associated
//! [`ENABLED`](Probe::ENABLED) constant is `false`: every emission site in
//! the engines is guarded by `if P::ENABLED { ... }`, so with the no-op
//! probe the entire layer is compiled out of the hot loops — no branches, no
//! allocation, no calls (verified by a guarded micro-bench in `tyr-bench`).
//!
//! Two sinks ship with the crate: the per-node aggregating profiler in
//! [`crate::profile`] and the [`ChromeTrace`] exporter here, which writes
//! Chrome-trace / Perfetto JSON (blocks → processes, nodes → threads, stalls
//! → async slices) so any run opens in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! Stall events are *intervals* keyed by `(node, tag)`: a
//! [`ProbeEvent::StallBegin`] opens the interval (re-opening with a
//! different reason switches it) and [`ProbeEvent::StallEnd`] closes it.
//! Sinks close any still-open interval at the run's final cycle — this is
//! precisely how a deadlocked run's wedged tokens show up with their full
//! stall duration attributed (Fig. 11).

use std::collections::HashMap;

use crate::json::{self, Json};

/// Why a node cannot make progress right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// Tokens sit in the matching store waiting for the rest of the node's
    /// input set (classic dataflow partial-match wait).
    PartialMatch,
    /// An `allocate` / `newTag` request is parked because the tag space has
    /// no (eligible) free tag — the Fig. 11 failure mode.
    TagStarved,
    /// The node's inputs are ready but an output FIFO is full (ordered
    /// engine back pressure).
    BackPressure,
}

impl StallReason {
    /// All reasons, in display order.
    pub const ALL: [StallReason; 3] =
        [StallReason::PartialMatch, StallReason::TagStarved, StallReason::BackPressure];

    /// Stable human-readable label (also used in trace JSON).
    pub fn label(self) -> &'static str {
        match self {
            StallReason::PartialMatch => "partial-match",
            StallReason::TagStarved => "tag-starved",
            StallReason::BackPressure => "back-pressure",
        }
    }

    /// Dense index into per-reason arrays.
    pub fn index(self) -> usize {
        match self {
            StallReason::PartialMatch => 0,
            StallReason::TagStarved => 1,
            StallReason::BackPressure => 2,
        }
    }
}

/// The class of a deliberately injected fault (see `tyr-sim`'s `FaultPlan`).
///
/// Lives here rather than in `tyr-sim` because [`ProbeEvent::FaultInjected`]
/// carries it: the probe layer is the channel through which injected faults
/// are attributed, and sinks (profiler, Chrome trace, counters) must be able
/// to name the class without depending on the simulator crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// A token in flight was silently discarded.
    TokenDrop,
    /// A token in flight was delivered twice.
    TokenDup,
    /// A token's value was corrupted (XOR with a seeded mask).
    TokenCorrupt,
    /// A memory response was delayed by extra cycles (latency-only fault).
    MemDelay,
    /// A memory response's value was flipped.
    MemFlip,
    /// A node was stuck: its ready activations refuse to fire.
    NodeStick,
    /// Free tags were stolen from a tag space.
    TagExhaust,
}

impl FaultKind {
    /// Every fault class, in taxonomy order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::TokenDrop,
        FaultKind::TokenDup,
        FaultKind::TokenCorrupt,
        FaultKind::MemDelay,
        FaultKind::MemFlip,
        FaultKind::NodeStick,
        FaultKind::TagExhaust,
    ];

    /// Stable human-readable label (also the CLI spelling in
    /// `repro fuzz --faults` and the name used in trace JSON).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TokenDrop => "drop",
            FaultKind::TokenDup => "dup",
            FaultKind::TokenCorrupt => "corrupt",
            FaultKind::MemDelay => "mem-delay",
            FaultKind::MemFlip => "mem-flip",
            FaultKind::NodeStick => "stick",
            FaultKind::TagExhaust => "tags",
        }
    }

    /// Dense index into per-class arrays.
    pub fn index(self) -> usize {
        FaultKind::ALL.iter().position(|k| *k == self).unwrap()
    }
}

/// A typed engine event. All variants are `Copy`; emission is a plain call
/// with two scalars and no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// `node` executed (counts exactly what the engine reports as a dynamic
    /// instruction).
    NodeFired {
        /// Static node id.
        node: u32,
    },
    /// A token was sent toward `node` (the *consumer*; occupancy of a node's
    /// matching store is produced − consumed).
    TokenProduced {
        /// Consumer node id.
        node: u32,
    },
    /// `node` consumed `count` waiting tokens when it fired.
    TokenConsumed {
        /// Node id.
        node: u32,
        /// Tokens removed from its matching store.
        count: u32,
    },
    /// A tag was taken from tag space `space`.
    TagAllocated {
        /// Tag-space (block) id.
        space: u32,
        /// The concrete tag value.
        tag: u64,
    },
    /// A tag was returned to tag space `space`.
    TagFreed {
        /// Tag-space (block) id.
        space: u32,
        /// The concrete tag value.
        tag: u64,
    },
    /// A `changeTag` moved a value between contexts.
    TagChanged {
        /// The changeTag node id.
        node: u32,
        /// Tag the value arrived with.
        from: u64,
        /// Tag it leaves with.
        to: u64,
    },
    /// A new dynamic instance of concurrent block `block` began (its
    /// allocate fired).
    BlockEnter {
        /// Block id.
        block: u32,
        /// The instance's tag.
        tag: u64,
    },
    /// A dynamic block instance completed (its free fired).
    BlockExit {
        /// Block id.
        block: u32,
        /// The instance's tag.
        tag: u64,
    },
    /// `node` (activation `tag`) became unable to make progress. Re-opening
    /// an open interval with a different reason switches it.
    StallBegin {
        /// Node id.
        node: u32,
        /// Activation tag (0 for untagged engines).
        tag: u64,
        /// Attributed reason.
        reason: StallReason,
    },
    /// The stall interval for `(node, tag)` ended.
    StallEnd {
        /// Node id.
        node: u32,
        /// Activation tag.
        tag: u64,
    },
    /// A fault-injection layer deliberately perturbed the machine at `node`
    /// (0 when the fault has no node, e.g. tag-space exhaustion). Emitted
    /// exactly once per injected fault, so a counting sink can check probe
    /// parity against the engine's own fault log.
    FaultInjected {
        /// Node the fault was applied at (consumer for token faults, load
        /// node for memory faults, stuck node for sticks; 0 otherwise).
        node: u32,
        /// The fault class.
        kind: FaultKind,
    },
    /// `node` touched memory word `addr`. Emitted exactly once per
    /// architectural `load` / `store` / `store_add` (a `store_add` is one
    /// write: its read-modify-write is atomic in every engine), so a
    /// counting sink can check probe parity against the engine's own
    /// load/store counters. Feeds the [`crate::locality`] working-set sink.
    MemAccess {
        /// Node performing the access (0 for the interpreter-backed vN/OoO
        /// engines, which have no spatial structure).
        node: u32,
        /// Absolute word address in the flat memory image.
        addr: i64,
        /// `true` for `store` / `store_add`, `false` for `load`.
        write: bool,
    },
    /// The cache-hierarchy memory model missed L1 on an access by `node`.
    /// Emitted exactly once per L1 miss (never under ideal memory), so a
    /// counting sink can check probe parity against
    /// `RunResult::mem_misses()`. Feeds the timeline's `mem_misses` window
    /// quantity.
    MemMiss {
        /// Node performing the access (0 for the interpreter-backed vN/OoO
        /// engines).
        node: u32,
        /// Absolute word address in the flat memory image.
        addr: i64,
        /// `true` when L2 served the miss, `false` when it went to DRAM.
        l2: bool,
    },
}

/// The event taxonomy, for coverage validation (the CI gate checks that a
/// trace contains ≥ 1 event of every kind the traced engine can emit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// [`ProbeEvent::NodeFired`].
    Fired,
    /// [`ProbeEvent::TokenProduced`].
    Produced,
    /// [`ProbeEvent::TokenConsumed`].
    Consumed,
    /// [`ProbeEvent::TagAllocated`].
    TagAllocated,
    /// [`ProbeEvent::TagFreed`].
    TagFreed,
    /// [`ProbeEvent::TagChanged`].
    TagChanged,
    /// [`ProbeEvent::BlockEnter`].
    BlockEnter,
    /// [`ProbeEvent::BlockExit`].
    BlockExit,
    /// [`ProbeEvent::StallBegin`].
    StallBegin,
    /// [`ProbeEvent::StallEnd`].
    StallEnd,
    /// [`ProbeEvent::FaultInjected`].
    FaultInjected,
    /// [`ProbeEvent::MemAccess`].
    MemAccess,
    /// [`ProbeEvent::MemMiss`].
    MemMiss,
}

impl EventKind {
    /// Every kind, in taxonomy order.
    pub const ALL: [EventKind; 13] = [
        EventKind::Fired,
        EventKind::Produced,
        EventKind::Consumed,
        EventKind::TagAllocated,
        EventKind::TagFreed,
        EventKind::TagChanged,
        EventKind::BlockEnter,
        EventKind::BlockExit,
        EventKind::StallBegin,
        EventKind::StallEnd,
        EventKind::FaultInjected,
        EventKind::MemAccess,
        EventKind::MemMiss,
    ];

    /// Stable name used in trace JSON (`otherData.eventKinds`) and CI
    /// validation.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Fired => "fired",
            EventKind::Produced => "produced",
            EventKind::Consumed => "consumed",
            EventKind::TagAllocated => "tag-allocated",
            EventKind::TagFreed => "tag-freed",
            EventKind::TagChanged => "tag-changed",
            EventKind::BlockEnter => "block-enter",
            EventKind::BlockExit => "block-exit",
            EventKind::StallBegin => "stall-begin",
            EventKind::StallEnd => "stall-end",
            EventKind::FaultInjected => "fault-injected",
            EventKind::MemAccess => "mem-access",
            EventKind::MemMiss => "mem-miss",
        }
    }

    /// Dense index into per-kind arrays.
    pub fn index(self) -> usize {
        EventKind::ALL.iter().position(|k| *k == self).unwrap()
    }
}

impl ProbeEvent {
    /// The taxonomy kind of this event.
    pub fn kind(self) -> EventKind {
        match self {
            ProbeEvent::NodeFired { .. } => EventKind::Fired,
            ProbeEvent::TokenProduced { .. } => EventKind::Produced,
            ProbeEvent::TokenConsumed { .. } => EventKind::Consumed,
            ProbeEvent::TagAllocated { .. } => EventKind::TagAllocated,
            ProbeEvent::TagFreed { .. } => EventKind::TagFreed,
            ProbeEvent::TagChanged { .. } => EventKind::TagChanged,
            ProbeEvent::BlockEnter { .. } => EventKind::BlockEnter,
            ProbeEvent::BlockExit { .. } => EventKind::BlockExit,
            ProbeEvent::StallBegin { .. } => EventKind::StallBegin,
            ProbeEvent::StallEnd { .. } => EventKind::StallEnd,
            ProbeEvent::FaultInjected { .. } => EventKind::FaultInjected,
            ProbeEvent::MemAccess { .. } => EventKind::MemAccess,
            ProbeEvent::MemMiss { .. } => EventKind::MemMiss,
        }
    }
}

/// An event sink the engines emit into.
///
/// All methods default to no-ops so a sink only implements what it needs.
/// The engines guard every emission site with `if P::ENABLED`, so a probe
/// with `ENABLED = false` ([`NoProbe`]) costs nothing at runtime.
///
/// # Example
///
/// A custom sink that counts fires:
///
/// ```
/// use tyr_stats::probe::{Probe, ProbeEvent};
///
/// #[derive(Default)]
/// struct FireCounter {
///     fires: u64,
/// }
///
/// impl Probe for FireCounter {
///     fn event(&mut self, _cycle: u64, ev: ProbeEvent) {
///         if matches!(ev, ProbeEvent::NodeFired { .. }) {
///             self.fires += 1;
///         }
///     }
/// }
///
/// let mut sink = FireCounter::default();
/// sink.event(0, ProbeEvent::NodeFired { node: 3 });
/// sink.event(0, ProbeEvent::TokenProduced { node: 4 });
/// assert_eq!(sink.fires, 1);
/// ```
pub trait Probe {
    /// Whether the engine should emit at all. Emission sites (and any
    /// probe-only bookkeeping) are compiled out when this is `false`.
    const ENABLED: bool = true;

    /// Announces a concurrent block (process in Chrome-trace terms) before
    /// the run starts.
    fn declare_block(&mut self, _block: u32, _name: &str) {}

    /// Announces a node, its label, and its owning block before the run
    /// starts.
    fn declare_node(&mut self, _node: u32, _label: &str, _block: u32) {}

    /// Delivers one event at `cycle`. Cycles are non-decreasing for all
    /// engines except `ooo`, whose issue cycles may step backwards; sinks
    /// must tolerate that. The windowed [`crate::timeline::Timeline`] sink
    /// is the reference for how: it buckets by absolute cycle and stores
    /// levels as deltas, so a late event lands in the window its cycle
    /// names with no panic and no skew (defended by its
    /// `out_of_order_cycles_land_in_the_right_window` test).
    fn event(&mut self, _cycle: u64, _ev: ProbeEvent) {}
}

/// The zero-cost default probe: `ENABLED = false`, so engines monomorphized
/// over it contain no probe code at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;
}

/// Forwarding impl so callers can pass `&mut sink` to an engine (whose
/// `run(self)` consumes it) and still own the sink afterwards.
impl<P: Probe + ?Sized> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    fn declare_block(&mut self, block: u32, name: &str) {
        (**self).declare_block(block, name);
    }

    fn declare_node(&mut self, node: u32, label: &str, block: u32) {
        (**self).declare_node(node, label, block);
    }

    fn event(&mut self, cycle: u64, ev: ProbeEvent) {
        (**self).event(cycle, ev);
    }
}

/// Fan-out to two sinks (e.g. profiler + Chrome trace in one run).
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn declare_block(&mut self, block: u32, name: &str) {
        self.0.declare_block(block, name);
        self.1.declare_block(block, name);
    }

    fn declare_node(&mut self, node: u32, label: &str, block: u32) {
        self.0.declare_node(node, label, block);
        self.1.declare_node(node, label, block);
    }

    fn event(&mut self, cycle: u64, ev: ProbeEvent) {
        self.0.event(cycle, ev);
        self.1.event(cycle, ev);
    }
}

/// A probe that just counts events — useful for tests and as the "enabled
/// but minimal" reference point in the overhead micro-bench.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingProbe {
    /// Total events received.
    pub events: u64,
}

impl Probe for CountingProbe {
    fn event(&mut self, _cycle: u64, _ev: ProbeEvent) {
        self.events += 1;
    }
}

/// Serialized Chrome-trace events beyond this count are dropped (with
/// `otherData.truncated = true`) so a paper-scale run cannot write an
/// unboundedly large file. Kind counts keep counting past the cap.
const MAX_TRACE_EVENTS: usize = 1_000_000;

/// Sampling stride (in cycles) for the machine-wide tokens-in-flight and
/// live-tags counter tracks — one sample per window, matching the default
/// [`crate::timeline::TimelineConfig`] window, so the Perfetto curves line
/// up with the `repro timeline` windows.
const GLOBAL_COUNTER_WINDOW: u64 = 64;

#[derive(Debug, Clone, Copy)]
struct FireRun {
    start: u64,
    last: u64,
    count: u64,
}

/// Chrome-trace / Perfetto JSON exporter.
///
/// Mapping: concurrent blocks → processes (`pid`), nodes → threads (`tid`),
/// consecutive-cycle fire runs → complete (`"X"`) slices, stall intervals →
/// async (`"b"`/`"e"`) slices named by reason, tag and block events →
/// instant (`"i"`) events, and per-block live-token counts → counter
/// (`"C"`) events. Two machine-wide counter tracks — `tokens in flight`
/// and `live tags`, on `pid` 0 — are sampled once per
/// 64-cycle timeline window so Perfetto shows the same curves as
/// `repro timeline`. Use [`ChromeTrace::render`] after the run to get the
/// JSON document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    meta: Vec<String>,
    events: Vec<String>,
    node_block: HashMap<u32, u32>,
    fires: HashMap<u32, FireRun>,
    open_stalls: HashMap<(u32, u64), (u64, u64, StallReason)>,
    next_async_id: u64,
    block_live: HashMap<u32, i64>,
    dirty_blocks: Vec<u32>,
    counter_cycle: u64,
    global_inflight: i64,
    live_tags: i64,
    next_global_sample: u64,
    kind_counts: [u64; EventKind::ALL.len()],
    dropped: u64,
}

impl ChromeTrace {
    /// Creates an empty exporter.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Events seen per taxonomy kind (counted even past the size cap).
    pub fn kind_count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind.index()]
    }

    fn push(&mut self, ev: String) {
        if self.events.len() < MAX_TRACE_EVENTS {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    fn flush_fire(&mut self, node: u32, run: FireRun) {
        let pid = self.node_block.get(&node).copied().unwrap_or(0);
        let dur = run.last - run.start + 1;
        self.push(format!(
            "{{\"ph\":\"X\",\"cat\":\"fired\",\"name\":\"fire\",\"pid\":{pid},\"tid\":{node},\
             \"ts\":{},\"dur\":{dur},\"args\":{{\"fires\":{}}}}}",
            run.start, run.count
        ));
    }

    fn flush_counters(&mut self) {
        let cycle = self.counter_cycle;
        let mut blocks = std::mem::take(&mut self.dirty_blocks);
        for block in blocks.drain(..) {
            let live = self.block_live.get(&block).copied().unwrap_or(0);
            self.push(format!(
                "{{\"ph\":\"C\",\"name\":\"live tokens\",\"pid\":{block},\"tid\":0,\
                 \"ts\":{cycle},\"args\":{{\"tokens\":{live}}}}}"
            ));
        }
        self.dirty_blocks = blocks;
    }

    /// Emits a catch-up counter sample at the last un-sampled window
    /// boundary when one or more whole sampling windows passed without any
    /// event — e.g. across an event-driven engine's clock jump, where an
    /// idle gap produces no probe events at all. The counters were flat
    /// through the gap; without the catch-up point Perfetto would
    /// interpolate a ramp from the pre-gap sample to the next one instead
    /// of the true merged flat span. Called before the current event's
    /// deltas are applied, so the sample carries the gap's values.
    fn backfill_globals(&mut self, cycle: u64) {
        let window_start = (cycle / GLOBAL_COUNTER_WINDOW) * GLOBAL_COUNTER_WINDOW;
        if self.next_global_sample < window_start {
            self.sample_globals(self.next_global_sample);
        }
    }

    fn sample_globals(&mut self, cycle: u64) {
        let tokens = self.global_inflight;
        let tags = self.live_tags;
        self.push(format!(
            "{{\"ph\":\"C\",\"name\":\"tokens in flight\",\"pid\":0,\"tid\":0,\
             \"ts\":{cycle},\"args\":{{\"tokens\":{tokens}}}}}"
        ));
        self.push(format!(
            "{{\"ph\":\"C\",\"name\":\"live tags\",\"pid\":0,\"tid\":0,\
             \"ts\":{cycle},\"args\":{{\"tags\":{tags}}}}}"
        ));
        self.next_global_sample = (cycle / GLOBAL_COUNTER_WINDOW + 1) * GLOBAL_COUNTER_WINDOW;
    }

    fn touch_block(&mut self, block: u32, delta: i64) {
        *self.block_live.entry(block).or_insert(0) += delta;
        if !self.dirty_blocks.contains(&block) {
            self.dirty_blocks.push(block);
        }
    }

    fn instant(&mut self, cycle: u64, cat: &str, name: &str, pid: u32, args: &str) {
        self.push(format!(
            "{{\"ph\":\"i\",\"cat\":\"{cat}\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":0,\
             \"ts\":{cycle},\"s\":\"p\",\"args\":{args}}}"
        ));
    }

    fn open_stall(&mut self, cycle: u64, node: u32, tag: u64, reason: StallReason) {
        self.close_stall(cycle, node, tag);
        let id = self.next_async_id;
        self.next_async_id += 1;
        self.open_stalls.insert((node, tag), (id, cycle, reason));
    }

    fn close_stall(&mut self, cycle: u64, node: u32, tag: u64) {
        if let Some((id, start, reason)) = self.open_stalls.remove(&(node, tag)) {
            let pid = self.node_block.get(&node).copied().unwrap_or(0);
            let end = cycle.max(start);
            self.push(format!(
                "{{\"ph\":\"b\",\"cat\":\"stall\",\"id\":{id},\"name\":\"{}\",\"pid\":{pid},\
                 \"tid\":{node},\"ts\":{start},\"args\":{{\"tag\":{tag}}}}}",
                reason.label()
            ));
            self.push(format!(
                "{{\"ph\":\"e\",\"cat\":\"stall\",\"id\":{id},\"name\":\"{}\",\"pid\":{pid},\
                 \"tid\":{node},\"ts\":{end}}}",
                reason.label()
            ));
        }
    }

    /// Closes open fire runs, stall intervals, and counters at `final_cycle`
    /// and returns the complete JSON document.
    pub fn render(mut self, final_cycle: u64) -> String {
        let fires: Vec<(u32, FireRun)> = {
            let mut v: Vec<_> = self.fires.drain().collect();
            v.sort_by_key(|(n, _)| *n);
            v
        };
        for (node, run) in fires {
            self.flush_fire(node, run);
        }
        let open: Vec<(u32, u64)> = {
            let mut v: Vec<_> = self.open_stalls.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for (node, tag) in open {
            self.close_stall(final_cycle, node, tag);
        }
        self.counter_cycle = final_cycle;
        self.flush_counters();
        self.backfill_globals(final_cycle);
        self.sample_globals(final_cycle);

        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.meta.iter().chain(self.events.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(ev);
        }
        out.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"tool\":\"tyr repro trace\",");
        out.push_str(&format!(
            "\"finalCycle\":{final_cycle},\"truncated\":{},\"dropped\":{},",
            self.dropped > 0,
            self.dropped
        ));
        out.push_str("\"eventKinds\":{");
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", kind.name(), self.kind_counts[kind.index()]));
        }
        out.push_str("}}}");
        out
    }

    /// Structural validation of an emitted trace document: parses the JSON,
    /// checks the `traceEvents` array is well-formed, and returns the
    /// per-kind event counts recorded in `otherData.eventKinds`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn validate(text: &str) -> Result<HashMap<String, u64>, String> {
        let doc = Json::parse(text)?;
        let events =
            doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;
        if events.is_empty() {
            return Err("traceEvents is empty".into());
        }
        for (i, ev) in events.iter().enumerate() {
            let ph = ev
                .get("ph")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i} has no ph"))?;
            if !matches!(ph, "X" | "b" | "e" | "i" | "C" | "M") {
                return Err(format!("event {i} has unknown phase {ph:?}"));
            }
            if ev.get("name").and_then(Json::as_str).is_none() {
                return Err(format!("event {i} has no name"));
            }
            if ph != "M" && ev.get("ts").and_then(Json::as_f64).is_none() {
                return Err(format!("event {i} ({ph}) has no ts"));
            }
            if ph == "C" {
                let args = ev
                    .get("args")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| format!("counter event {i} has no args object"))?;
                if !args.iter().any(|(_, v)| v.as_f64().is_some()) {
                    return Err(format!("counter event {i} has no numeric series"));
                }
            }
        }
        let kinds = doc
            .get("otherData")
            .and_then(|o| o.get("eventKinds"))
            .and_then(Json::as_obj)
            .ok_or("missing otherData.eventKinds")?;
        let mut out = HashMap::new();
        for (k, v) in kinds {
            out.insert(k.clone(), v.as_f64().ok_or("non-numeric kind count")? as u64);
        }
        Ok(out)
    }
}

impl Probe for ChromeTrace {
    fn declare_block(&mut self, block: u32, name: &str) {
        let mut label = String::new();
        json::write_str(&mut label, name);
        self.meta.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{block},\"tid\":0,\
             \"args\":{{\"name\":{label}}}}}"
        ));
    }

    fn declare_node(&mut self, node: u32, label: &str, block: u32) {
        self.node_block.insert(node, block);
        let mut name = String::new();
        json::write_str(&mut name, label);
        self.meta.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{block},\"tid\":{node},\
             \"args\":{{\"name\":{name}}}}}"
        ));
    }

    fn event(&mut self, cycle: u64, ev: ProbeEvent) {
        self.kind_counts[ev.kind().index()] += 1;
        if cycle > self.counter_cycle {
            self.flush_counters();
            self.counter_cycle = cycle;
        }
        self.backfill_globals(cycle);
        match ev {
            ProbeEvent::TokenProduced { .. } => self.global_inflight += 1,
            ProbeEvent::TokenConsumed { count, .. } => self.global_inflight -= count as i64,
            ProbeEvent::TagAllocated { .. } => self.live_tags += 1,
            ProbeEvent::TagFreed { .. } => self.live_tags -= 1,
            _ => {}
        }
        if cycle >= self.next_global_sample {
            self.sample_globals(cycle);
        }
        match ev {
            ProbeEvent::NodeFired { node } => match self.fires.get_mut(&node) {
                Some(run) if cycle == run.last || cycle == run.last + 1 => {
                    run.last = cycle;
                    run.count += 1;
                }
                Some(run) => {
                    let done = *run;
                    *run = FireRun { start: cycle, last: cycle, count: 1 };
                    self.flush_fire(node, done);
                }
                None => {
                    self.fires.insert(node, FireRun { start: cycle, last: cycle, count: 1 });
                }
            },
            ProbeEvent::TokenProduced { node } => {
                let block = self.node_block.get(&node).copied().unwrap_or(0);
                self.touch_block(block, 1);
            }
            ProbeEvent::TokenConsumed { node, count } => {
                let block = self.node_block.get(&node).copied().unwrap_or(0);
                self.touch_block(block, -(count as i64));
            }
            ProbeEvent::TagAllocated { space, tag } => {
                self.instant(cycle, "tag", "allocate", space, &format!("{{\"tag\":{tag}}}"));
            }
            ProbeEvent::TagFreed { space, tag } => {
                self.instant(cycle, "tag", "free", space, &format!("{{\"tag\":{tag}}}"));
            }
            ProbeEvent::TagChanged { node, from, to } => {
                let pid = self.node_block.get(&node).copied().unwrap_or(0);
                self.instant(
                    cycle,
                    "tag",
                    "changeTag",
                    pid,
                    &format!("{{\"node\":{node},\"from\":{from},\"to\":{to}}}"),
                );
            }
            ProbeEvent::BlockEnter { block, tag } => {
                self.instant(cycle, "block", "enter", block, &format!("{{\"tag\":{tag}}}"));
            }
            ProbeEvent::BlockExit { block, tag } => {
                self.instant(cycle, "block", "exit", block, &format!("{{\"tag\":{tag}}}"));
            }
            ProbeEvent::StallBegin { node, tag, reason } => {
                self.open_stall(cycle, node, tag, reason);
            }
            ProbeEvent::StallEnd { node, tag } => {
                self.close_stall(cycle, node, tag);
            }
            ProbeEvent::FaultInjected { node, kind } => {
                let pid = self.node_block.get(&node).copied().unwrap_or(0);
                self.instant(cycle, "fault", kind.label(), pid, &format!("{{\"node\":{node}}}"));
            }
            ProbeEvent::MemAccess { node, addr, write } => {
                let pid = self.node_block.get(&node).copied().unwrap_or(0);
                self.instant(
                    cycle,
                    "mem",
                    if write { "store" } else { "load" },
                    pid,
                    &format!("{{\"node\":{node},\"addr\":{addr}}}"),
                );
            }
            ProbeEvent::MemMiss { node, addr, l2 } => {
                let pid = self.node_block.get(&node).copied().unwrap_or(0);
                self.instant(
                    cycle,
                    "mem",
                    if l2 { "missL2" } else { "missL1" },
                    pid,
                    &format!("{{\"node\":{node},\"addr\":{addr}}}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        let mut t = ChromeTrace::new();
        t.declare_block(0, "main");
        t.declare_block(1, "loop \"inner\"");
        t.declare_node(0, "load a", 0);
        t.declare_node(1, "mul", 1);
        t.event(0, ProbeEvent::NodeFired { node: 0 });
        t.event(1, ProbeEvent::NodeFired { node: 0 });
        t.event(1, ProbeEvent::TokenProduced { node: 1 });
        t.event(2, ProbeEvent::StallBegin { node: 1, tag: 3, reason: StallReason::TagStarved });
        t.event(2, ProbeEvent::TagAllocated { space: 1, tag: 3 });
        t.event(3, ProbeEvent::BlockEnter { block: 1, tag: 3 });
        t.event(5, ProbeEvent::StallEnd { node: 1, tag: 3 });
        t.event(6, ProbeEvent::NodeFired { node: 1 });
        t.event(6, ProbeEvent::TokenConsumed { node: 1, count: 1 });
        t.event(7, ProbeEvent::TagFreed { space: 1, tag: 3 });
        t.event(7, ProbeEvent::BlockExit { block: 1, tag: 3 });
        t.event(8, ProbeEvent::TagChanged { node: 1, from: 3, to: 0 });
        t.event(8, ProbeEvent::FaultInjected { node: 1, kind: FaultKind::TokenCorrupt });
        t.event(8, ProbeEvent::MemAccess { node: 0, addr: 64, write: false });
        t.event(8, ProbeEvent::MemMiss { node: 0, addr: 64, l2: false });
        // Left open: must be closed by render() at the final cycle.
        t.event(9, ProbeEvent::StallBegin { node: 0, tag: 0, reason: StallReason::PartialMatch });
        t.render(12)
    }

    #[test]
    fn trace_json_round_trips() {
        let text = sample_trace();
        let doc = Json::parse(&text).expect("trace JSON parses");
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn trace_validates_with_full_taxonomy() {
        let text = sample_trace();
        let kinds = ChromeTrace::validate(&text).unwrap();
        for kind in EventKind::ALL {
            assert!(
                kinds.get(kind.name()).copied().unwrap_or(0) > 0,
                "kind {} missing from sample trace",
                kind.name()
            );
        }
    }

    #[test]
    fn open_stalls_close_at_final_cycle() {
        let text = sample_trace();
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let closes: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("e"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(closes.len(), 2, "one explicit StallEnd + one forced close");
        assert!(closes.contains(&12.0), "open interval closed at the final cycle");
    }

    #[test]
    fn consecutive_fires_merge_into_one_slice() {
        let mut t = ChromeTrace::new();
        t.declare_node(4, "n", 0);
        for c in 10..20 {
            t.event(c, ProbeEvent::NodeFired { node: 4 });
        }
        t.event(30, ProbeEvent::NodeFired { node: 4 });
        let text = t.render(31);
        let doc = Json::parse(&text).unwrap();
        let slices: Vec<&Json> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].get("dur").unwrap().as_f64().unwrap(), 10.0);
        assert_eq!(slices[0].get("args").unwrap().get("fires").unwrap().as_f64().unwrap(), 10.0);
    }

    #[test]
    fn global_counter_tracks_are_sampled_per_window() {
        let mut t = ChromeTrace::new();
        t.declare_node(0, "n", 0);
        // Cross two sampling windows and finish mid-window: expect samples at
        // cycle 0, 64, 128, and the forced final sample at 150.
        for c in [0u64, 3, 64, 70, 128, 140] {
            t.event(c, ProbeEvent::TokenProduced { node: 0 });
        }
        t.event(140, ProbeEvent::TagAllocated { space: 0, tag: 1 });
        let text = t.render(150);
        let doc = Json::parse(&text).unwrap();
        let counters: Vec<&Json> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        let track = |name: &str| -> Vec<(f64, f64)> {
            counters
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .map(|e| {
                    let ts = e.get("ts").unwrap().as_f64().unwrap();
                    let args = e.get("args").unwrap().as_obj().unwrap();
                    (ts, args[0].1.as_f64().unwrap())
                })
                .collect()
        };
        let tokens = track("tokens in flight");
        assert_eq!(
            tokens,
            vec![(0.0, 1.0), (64.0, 3.0), (128.0, 5.0), (150.0, 6.0)],
            "one sample per {GLOBAL_COUNTER_WINDOW}-cycle window plus the final sample"
        );
        let tags = track("live tags");
        assert_eq!(tags.last(), Some(&(150.0, 1.0)));
        ChromeTrace::validate(&text).expect("counter tracks pass validation");
    }

    #[test]
    fn global_counter_gaps_get_a_backfill_sample() {
        // An event-driven engine can jump the clock over hundreds of idle
        // cycles, so whole sampling windows pass with no probe events. The
        // gap must render as one merged flat span: a single catch-up sample
        // at the first skipped window boundary carrying the pre-gap values,
        // not a silent drop (which Perfetto would draw as a ramp).
        let track = |text: &str, name: &str| -> Vec<(f64, f64)> {
            let doc = Json::parse(text).unwrap();
            doc.get("traceEvents")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Json::as_str) == Some("C")
                        && e.get("name").and_then(Json::as_str) == Some(name)
                })
                .map(|e| {
                    let ts = e.get("ts").unwrap().as_f64().unwrap();
                    let args = e.get("args").unwrap().as_obj().unwrap();
                    (ts, args[0].1.as_f64().unwrap())
                })
                .collect()
        };

        // Gap between two events.
        let mut t = ChromeTrace::new();
        t.declare_node(0, "n", 0);
        t.event(0, ProbeEvent::TokenProduced { node: 0 });
        t.event(1000, ProbeEvent::TokenProduced { node: 0 });
        let text = t.render(1010);
        assert_eq!(
            track(&text, "tokens in flight"),
            vec![(0.0, 1.0), (64.0, 1.0), (1000.0, 2.0), (1010.0, 2.0)],
            "backfill at the first skipped boundary with pre-gap value"
        );
        ChromeTrace::validate(&text).expect("backfilled trace passes validation");

        // Gap between the last event and the final cycle.
        let mut t = ChromeTrace::new();
        t.declare_node(0, "n", 0);
        t.event(0, ProbeEvent::TokenProduced { node: 0 });
        let text = t.render(1000);
        assert_eq!(
            track(&text, "tokens in flight"),
            vec![(0.0, 1.0), (64.0, 1.0), (1000.0, 1.0)],
            "render backfills a tail gap before the forced final sample"
        );
    }

    #[test]
    fn validator_rejects_counter_without_numeric_args() {
        let doc = |counter: &str| {
            format!("{{\"traceEvents\":[{counter}],\"otherData\":{{\"eventKinds\":{{}}}}}}")
        };
        let good = doc("{\"ph\":\"C\",\"name\":\"t\",\"ts\":0,\"args\":{\"tokens\":3}}");
        ChromeTrace::validate(&good).unwrap();
        let stringy = doc("{\"ph\":\"C\",\"name\":\"t\",\"ts\":0,\"args\":{\"tokens\":\"3\"}}");
        assert!(
            ChromeTrace::validate(&stringy).unwrap_err().contains("no numeric series"),
            "stringified counter value must be rejected"
        );
        let missing = doc("{\"ph\":\"C\",\"name\":\"t\",\"ts\":0}");
        assert!(
            ChromeTrace::validate(&missing).unwrap_err().contains("has no args object"),
            "counter without args must be rejected"
        );
    }

    #[test]
    fn counting_probe_counts() {
        let mut c = CountingProbe::default();
        c.event(0, ProbeEvent::NodeFired { node: 0 });
        c.event(1, ProbeEvent::TokenProduced { node: 0 });
        assert_eq!(c.events, 2);
    }

    #[test]
    fn tuple_and_ref_probes_forward() {
        let mut a = CountingProbe::default();
        let mut b = ChromeTrace::new();
        {
            let mut pair = (&mut a, &mut b);
            pair.declare_node(0, "n", 0);
            pair.event(0, ProbeEvent::NodeFired { node: 0 });
        }
        assert_eq!(a.events, 1);
        assert_eq!(b.kind_count(EventKind::Fired), 1);
        const { assert!(<(&mut CountingProbe, &mut ChromeTrace) as Probe>::ENABLED) };
        const { assert!(!NoProbe::ENABLED) };
    }
}
