//! Terminal rendering of figures.
//!
//! The `repro` harness prints every figure of the paper as text: multi-series
//! line charts (state-over-time traces like Figs. 2, 9, 16, 18; CDFs like
//! Fig. 13) and labelled bar charts (Figs. 12, 14). A log-scale option covers
//! the paper's log-y plots.

/// One named series of `(x, y)` points for a line chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in increasing-x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

/// Marker glyphs assigned to series in order.
const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'];

/// Renders a multi-series line chart into a `String`.
///
/// * `log_y` — plot `log10(y+1)` on the vertical axis (the paper's
///   state-over-time figures are log scale).
/// * `width`/`height` — plot area size in characters, excluding axes.
pub fn line_chart(
    title: &str,
    series: &[Series],
    width: usize,
    height: usize,
    log_y: bool,
) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');

    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let xmin = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let xmax = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let ymap = |y: f64| if log_y { (y.max(0.0) + 1.0).log10() } else { y };
    let ymin_raw = all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let ymax_raw = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let (ymin, ymax) = (ymap(ymin_raw.min(0.0)), ymap(ymax_raw));
    let yspan = (ymax - ymin).max(1e-9);
    let xspan = (xmax - xmin).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let cy = (((ymap(y) - ymin) / yspan) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }

    let y_label_top = if log_y { format!("{:.3e}", ymax_raw) } else { format!("{:.1}", ymax_raw) };
    let y_label_bot = if log_y { "0".to_string() } else { format!("{:.1}", ymin_raw.min(0.0)) };
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>10} |", y_label_top)
        } else if i == height - 1 {
            format!("{:>10} |", y_label_bot)
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>12}{:<.1}{:>pad$.1}\n",
        "",
        xmin,
        xmax,
        pad = width.saturating_sub(6)
    ));
    out.push_str("  legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={}  ", MARKS[si % MARKS.len()], s.name));
    }
    out.push('\n');
    out
}

/// Renders a labelled horizontal bar chart. Values must be non-negative.
///
/// When `log_scale` is set, bar lengths are proportional to `log10(v+1)` —
/// used for the paper's log-scale state comparisons (Fig. 14).
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize, log_scale: bool) -> String {
    let width = width.max(10);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let map = |v: f64| if log_scale { (v.max(0.0) + 1.0).log10() } else { v };
    let vmax = rows.iter().map(|r| map(r.1)).fold(f64::NEG_INFINITY, f64::max).max(1e-9);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(8).min(32);
    for (label, v) in rows {
        let n = ((map(*v) / vmax) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {:<label_w$} |{:<width$}| {}\n",
            truncate(label, 32),
            "#".repeat(n.min(width)),
            fmt_count(*v),
            label_w = label_w,
            width = width
        ));
    }
    out
}

/// Intensity ramp for [`heatmap`], dimmest to brightest.
const HEAT: &[u8] = b" .:-=+*#%@";

/// Renders an ASCII heatmap: one labelled row per entry, the value series
/// resampled onto `width` columns (max within each column), intensity scaled
/// by `log10(v+1)` against the global maximum. Used for the per-block stall
/// heatmap of `repro trace`.
pub fn heatmap(title: &str, rows: &[(String, Vec<f64>)], width: usize) -> String {
    let width = width.max(16);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.iter().all(|(_, vs)| vs.is_empty()) {
        out.push_str("  (no data)\n");
        return out;
    }
    let map = |v: f64| (v.max(0.0) + 1.0).log10();
    let vmax = rows.iter().flat_map(|(_, vs)| vs.iter()).copied().fold(0.0f64, f64::max);
    let mmax = map(vmax).max(1e-9);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(8).min(24);
    for (label, vs) in rows {
        out.push_str(&format!("  {:<label_w$} |", truncate(label, 24)));
        for col in 0..width {
            // Columns partition the series; take the max in each bucket so
            // short spikes survive the resample.
            let lo = col * vs.len() / width;
            let hi = ((col + 1) * vs.len() / width).max(lo + 1).min(vs.len());
            let v = if lo >= vs.len() {
                0.0
            } else {
                vs[lo..hi].iter().copied().fold(0.0f64, f64::max)
            };
            let idx = ((map(v) / mmax) * (HEAT.len() - 1) as f64).round() as usize;
            out.push(HEAT[idx.min(HEAT.len() - 1)] as char);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "  {:<label_w$} |{}| scale: ' '=0 .. '@'={}\n",
        "time \u{2192}",
        "-".repeat(width),
        fmt_count(vmax)
    ));
    out
}

/// Renders one series as a `width`-character sparkline row using the
/// [`heatmap`] intensity ramp: columns partition the series (max within
/// each column, so short spikes survive), intensity is `log10(v+1)` scaled
/// against the row's own maximum. Negative values clamp to zero. Used for
/// the per-metric rows of `repro timeline`.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let width = width.max(8);
    let mut out = String::with_capacity(width);
    if values.is_empty() {
        return " ".repeat(width);
    }
    let map = |v: f64| (v.max(0.0) + 1.0).log10();
    let vmax = values.iter().copied().fold(0.0f64, f64::max);
    let mmax = map(vmax).max(1e-9);
    for col in 0..width {
        let lo = col * values.len() / width;
        let hi = ((col + 1) * values.len() / width).max(lo + 1).min(values.len());
        let v = if lo >= values.len() {
            0.0
        } else {
            values[lo..hi].iter().copied().fold(0.0f64, f64::max)
        };
        let idx = ((map(v) / mmax) * (HEAT.len() - 1) as f64).round() as usize;
        out.push(HEAT[idx.min(HEAT.len() - 1)] as char);
    }
    out
}

/// Clips `s` to at most `n` bytes (labels in this crate are ASCII).
pub fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// Formats a count compactly: `1234` → `1.23K`, `15_000_000` → `15.0M`.
pub fn fmt_count(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else if (v.fract()).abs() < 1e-9 {
        format!("{}", v as i64)
    } else {
        format!("{:.2}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_renders_all_series_marks() {
        let s = vec![
            Series::new("a", vec![(0.0, 0.0), (1.0, 10.0), (2.0, 5.0)]),
            Series::new("b", vec![(0.0, 3.0), (2.0, 8.0)]),
        ];
        let chart = line_chart("test", &s, 40, 10, false);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("a"));
        assert!(chart.contains("legend"));
    }

    #[test]
    fn line_chart_empty() {
        let chart = line_chart("t", &[], 40, 10, false);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn line_chart_log_scale_handles_zero() {
        let s = vec![Series::new("z", vec![(0.0, 0.0), (1.0, 1e7)])];
        let chart = line_chart("t", &s, 30, 8, true);
        assert!(chart.contains('*'));
    }

    #[test]
    fn bar_chart_lengths_are_monotone() {
        let rows = vec![("small".to_string(), 10.0), ("big".to_string(), 1000.0)];
        let chart = bar_chart("t", &rows, 50, false);
        let lines: Vec<&str> = chart.lines().collect();
        let count = |l: &str| l.matches('#').count();
        assert!(count(lines[1]) < count(lines[2]));
    }

    #[test]
    fn bar_chart_log_compresses() {
        let rows = vec![("a".to_string(), 10.0), ("b".to_string(), 1_000_000.0)];
        let lin = bar_chart("t", &rows, 60, false);
        let log = bar_chart("t", &rows, 60, true);
        let count = |s: &str, i: usize| s.lines().nth(i).unwrap().matches('#').count();
        // Linear: small bar nearly invisible. Log: clearly visible.
        assert!(count(&lin, 1) <= 1);
        assert!(count(&log, 1) > 5);
    }

    #[test]
    fn heatmap_intensity_tracks_values() {
        let rows = vec![
            ("hot".to_string(), vec![100.0; 64]),
            ("cold".to_string(), vec![0.0; 64]),
            ("spike".to_string(), {
                let mut v = vec![0.0; 64];
                v[40] = 100.0;
                v
            }),
        ];
        let map = heatmap("t", &rows, 32);
        let lines: Vec<&str> = map.lines().collect();
        assert!(lines[1].contains('@'), "max row renders at full intensity: {}", lines[1]);
        assert!(!lines[2].contains('@'), "zero row stays blank: {}", lines[2]);
        // The spike survives the 64 → 32 resample because buckets take max.
        assert!(lines[3].contains('@'), "spike preserved: {}", lines[3]);
        assert!(map.contains("scale:"));
    }

    #[test]
    fn heatmap_empty() {
        assert!(heatmap("t", &[], 32).contains("no data"));
    }

    #[test]
    fn sparkline_tracks_intensity() {
        let mut vs = vec![0.0; 64];
        vs[0] = 100.0;
        vs[63] = 1.0;
        let row = sparkline(&vs, 32);
        assert_eq!(row.len(), 32);
        assert_eq!(row.chars().next(), Some('@'), "max value renders brightest: {row}");
        assert!(row[1..31].chars().all(|c| c == ' '), "zero run stays blank: {row}");
        assert_ne!(row.chars().last(), Some(' '), "small nonzero value is visible: {row}");
        assert_eq!(sparkline(&[], 20), " ".repeat(20));
        // Fewer values than columns still fills the width.
        assert_eq!(sparkline(&[5.0, 0.0], 16).len(), 16);
    }

    #[test]
    fn fmt_count_ranges() {
        assert_eq!(fmt_count(12.0), "12");
        assert_eq!(fmt_count(1234.0), "1.23K");
        assert_eq!(fmt_count(15_000_000.0), "15.00M");
        assert_eq!(fmt_count(2.5e9), "2.50G");
        assert_eq!(fmt_count(0.5), "0.50");
    }
}
