//! A minimal JSON value, writer, and parser.
//!
//! The Chrome-trace exporter ([`crate::probe::ChromeTrace`]) must emit JSON
//! and the CI gate must *validate* what was emitted, but the workspace is
//! dependency-free by design (DESIGN.md §8) — so this module provides the
//! small subset of a JSON library we actually need: a [`Json`] value tree,
//! a deterministic writer, and a strict recursive-descent parser. Round-trip
//! equality (`parse(render(v)) == v`) is tested and is what the trace
//! subcommand's built-in validation relies on.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so rendering is
/// deterministic and round-trips are exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Integers up to 2^53 render without a decimal point.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The key → value pairs if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The whole input must be consumed (trailing
    /// whitespace excepted).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Convenience: a `Json::Num` from any integer cycle/count.
pub fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// Convenience: a `Json::Str` from anything string-like.
pub fn str<S: Into<String>>(s: S) -> Json {
    Json::Str(s.into())
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes `s` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_render_without_decimal() {
        assert_eq!(num(2_000_000_000).render(), "2000000000");
        assert_eq!(Json::Num(1.5).render(), "1.5");
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(vec![num(1), Json::Null, Json::Bool(true)])),
            ("name".into(), str("a \"quoted\"\nline\t\\")),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str().unwrap(), "A\n");
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
