//! Cycle-windowed telemetry: the time-series view of a run.
//!
//! Every other probe sink in this crate aggregates over the *whole* run
//! (profiler totals, working-set peaks, shard crossings). [`Timeline`] is
//! the missing time axis: it folds the thirteen-kind [`ProbeEvent`] stream
//! into fixed-width **cycle windows** and keeps a small set of per-window
//! metrics — firings, tokens produced/consumed, tag traffic, stall-begin
//! counts split by [`StallReason`], memory loads/stores, cache misses,
//! distinct cache lines touched, and fault strikes — so utilization collapse, working-set
//! ramps, and the exact moment a Fig. 11 wedge forms are all visible.
//!
//! # Window semantics
//!
//! An event at cycle `c` lands in window `c / window` by **absolute cycle**,
//! not arrival order. That makes the sink safe for the `ooo` engine, whose
//! issue cycles may step backwards (see [`Probe::event`]): a late event is
//! bucketed into the window its cycle belongs to, with no panic and no
//! skew. Quantities that are *levels* rather than counts — tokens in
//! flight, live tags, open stalls per reason — are stored as per-window
//! **deltas** and integrated by prefix sum at report time, so they too are
//! order-insensitive.
//!
//! # Coarsening
//!
//! The window count is bounded ([`TimelineConfig::max_windows`]). When a
//! run outgrows it, the window width doubles and adjacent window pairs
//! merge (counts add, line sets union) — the same stride-doubling idea as
//! [`crate::Trace`], keeping memory bounded on paper-scale runs while every
//! count stays exact.
//!
//! Open stall intervals are *not* force-closed: a run that wedges with
//! tokens parked on tag allocation keeps those stalls open through the last
//! window, which is exactly how the Fig. 11 deadlock shows up as a
//! stall-dominated tail (see [`TimelineReport::tail_attribution`]).

use std::collections::{HashMap, HashSet};

use crate::csv::CsvTable;
use crate::hist::LogHistogram;
use crate::probe::{Probe, ProbeEvent, StallReason};
use crate::{ascii, summary};

/// Words per cache line for the distinct-line metric (64-byte lines of
/// 8-byte words, matching [`crate::locality`]).
const LINE_WORDS_SHIFT: u32 = 3;

/// Configuration for a [`Timeline`] sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Initial window width in cycles (power of two recommended; doubles
    /// under coarsening). Must be at least 1.
    pub window: u64,
    /// Maximum number of windows held before the width doubles. Must be at
    /// least 2.
    pub max_windows: usize,
}

impl Default for TimelineConfig {
    /// 64-cycle windows, at most 256 of them (so a run up to 16384 cycles
    /// keeps the default resolution).
    fn default() -> Self {
        TimelineConfig { window: 64, max_windows: 256 }
    }
}

/// Raw per-window accumulators (counts and deltas; levels are derived at
/// report time).
#[derive(Debug, Clone, Default)]
struct Window {
    fires: u64,
    produced: u64,
    consumed: u64,
    tag_allocs: u64,
    tag_frees: u64,
    stall_begins: [u64; 3],
    /// Net open-stall change per reason: +1 where an interval begins, −1
    /// where it ends (in the *ending* window, wherever that is).
    stall_open_delta: [i64; 3],
    mem_loads: u64,
    mem_stores: u64,
    mem_misses: u64,
    faults: u64,
    lines: HashSet<i64>,
}

impl Window {
    fn absorb(&mut self, other: &Window) {
        self.fires += other.fires;
        self.produced += other.produced;
        self.consumed += other.consumed;
        self.tag_allocs += other.tag_allocs;
        self.tag_frees += other.tag_frees;
        for i in 0..3 {
            self.stall_begins[i] += other.stall_begins[i];
            self.stall_open_delta[i] += other.stall_open_delta[i];
        }
        self.mem_loads += other.mem_loads;
        self.mem_stores += other.mem_stores;
        self.mem_misses += other.mem_misses;
        self.faults += other.faults;
        self.lines.extend(other.lines.iter().copied());
    }
}

/// The windowed probe sink. Attach with the other sinks via the tuple
/// combinator, then call [`Timeline::report`] with the run's final cycle.
///
/// # Example
///
/// ```
/// use tyr_stats::probe::{Probe, ProbeEvent};
/// use tyr_stats::timeline::{Timeline, TimelineConfig};
///
/// let mut tl = Timeline::new(TimelineConfig { window: 4, max_windows: 8 });
/// tl.event(0, ProbeEvent::NodeFired { node: 1 });
/// tl.event(5, ProbeEvent::NodeFired { node: 1 });
/// let report = tl.report(7);
/// assert_eq!(report.windows.len(), 2);
/// assert_eq!(report.windows[0].fires, 1);
/// assert_eq!(report.windows[1].fires, 1);
/// ```
#[derive(Debug)]
pub struct Timeline {
    window: u64,
    max_windows: usize,
    coarsenings: u32,
    windows: Vec<Window>,
    /// Reason of each currently-open stall interval, keyed like the engines
    /// key them: `(node, tag)`.
    open_stalls: HashMap<(u32, u64), StallReason>,
    /// Cycle of each node's previous firing, for the gap histogram.
    last_fire: HashMap<u32, u64>,
    /// Per-node firing-gap dispersion across the whole run.
    fire_gaps: LogHistogram,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(TimelineConfig::default())
    }
}

impl Timeline {
    /// Creates a sink with the given window configuration (width and count
    /// floors of 1 and 2 are enforced).
    pub fn new(cfg: TimelineConfig) -> Self {
        Timeline {
            window: cfg.window.max(1),
            max_windows: cfg.max_windows.max(2),
            coarsenings: 0,
            windows: Vec::new(),
            open_stalls: HashMap::new(),
            last_fire: HashMap::new(),
            fire_gaps: LogHistogram::new(),
        }
    }

    /// Current window width in cycles (grows under coarsening).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Doubles the window width, merging adjacent window pairs.
    fn coarsen(&mut self) {
        self.window *= 2;
        self.coarsenings += 1;
        let merged: Vec<Window> = self
            .windows
            .chunks(2)
            .map(|pair| {
                let mut w = pair[0].clone();
                if let Some(second) = pair.get(1) {
                    w.absorb(second);
                }
                w
            })
            .collect();
        self.windows = merged;
    }

    /// The window holding cycle `c`, coarsening and growing as needed.
    fn at(&mut self, cycle: u64) -> &mut Window {
        while cycle / self.window >= self.max_windows as u64 {
            self.coarsen();
        }
        let idx = (cycle / self.window) as usize;
        if idx >= self.windows.len() {
            self.windows.resize_with(idx + 1, Window::default);
        }
        &mut self.windows[idx]
    }

    /// Closes the books and derives the level series. Windows are extended
    /// (coarsening if necessary) to cover `final_cycle`, so a wedged run's
    /// still-open stalls stay visible through the last window.
    pub fn report(mut self, final_cycle: u64) -> TimelineReport {
        // Materialize every window up to the final cycle.
        let _ = self.at(final_cycle);

        let mut windows = Vec::with_capacity(self.windows.len());
        let (mut inflight, mut live_tags) = (0i64, 0i64);
        let mut open = [0i64; 3];
        for (i, w) in self.windows.iter().enumerate() {
            inflight += w.produced as i64 - w.consumed as i64;
            live_tags += w.tag_allocs as i64 - w.tag_frees as i64;
            for (o, d) in open.iter_mut().zip(w.stall_open_delta) {
                *o += d;
            }
            windows.push(WindowStats {
                start: i as u64 * self.window,
                fires: w.fires,
                produced: w.produced,
                consumed: w.consumed,
                inflight,
                live_tags,
                stall_begins: w.stall_begins,
                open_stalls: open,
                mem_loads: w.mem_loads,
                mem_stores: w.mem_stores,
                mem_misses: w.mem_misses,
                distinct_lines: w.lines.len() as u64,
                faults: w.faults,
            });
        }
        TimelineReport {
            window: self.window,
            coarsenings: self.coarsenings,
            final_cycle,
            windows,
            fire_gaps: self.fire_gaps,
        }
    }
}

impl Probe for Timeline {
    fn event(&mut self, cycle: u64, ev: ProbeEvent) {
        match ev {
            ProbeEvent::NodeFired { node } => {
                self.at(cycle).fires += 1;
                if let Some(last) = self.last_fire.insert(node, cycle) {
                    // `ooo` can fire backwards in cycle order; a negative
                    // gap clamps to 0 rather than wrapping.
                    self.fire_gaps.record(cycle.saturating_sub(last));
                }
            }
            ProbeEvent::TokenProduced { .. } => self.at(cycle).produced += 1,
            ProbeEvent::TokenConsumed { count, .. } => self.at(cycle).consumed += u64::from(count),
            ProbeEvent::TagAllocated { .. } => self.at(cycle).tag_allocs += 1,
            ProbeEvent::TagFreed { .. } => self.at(cycle).tag_frees += 1,
            ProbeEvent::StallBegin { node, tag, reason } => {
                let old = self.open_stalls.insert((node, tag), reason);
                let w = self.at(cycle);
                w.stall_begins[reason.index()] += 1;
                w.stall_open_delta[reason.index()] += 1;
                if let Some(old) = old {
                    // Re-opening with a different reason switches the
                    // interval: the old one ends here.
                    w.stall_open_delta[old.index()] -= 1;
                }
            }
            ProbeEvent::StallEnd { node, tag } => {
                if let Some(reason) = self.open_stalls.remove(&(node, tag)) {
                    self.at(cycle).stall_open_delta[reason.index()] -= 1;
                }
            }
            ProbeEvent::FaultInjected { .. } => self.at(cycle).faults += 1,
            ProbeEvent::MemAccess { addr, write, .. } => {
                let w = self.at(cycle);
                if write {
                    w.mem_stores += 1;
                } else {
                    w.mem_loads += 1;
                }
                w.lines.insert(addr >> LINE_WORDS_SHIFT);
            }
            ProbeEvent::MemMiss { .. } => self.at(cycle).mem_misses += 1,
            ProbeEvent::TagChanged { .. }
            | ProbeEvent::BlockEnter { .. }
            | ProbeEvent::BlockExit { .. } => {}
        }
    }
}

/// One window of the finished timeline: raw counts plus the integrated
/// level series (`inflight`, `live_tags`, `open_stalls` are the values *at
/// the end* of the window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// First cycle of the window.
    pub start: u64,
    /// Node firings inside the window.
    pub fires: u64,
    /// Tokens produced inside the window.
    pub produced: u64,
    /// Tokens consumed inside the window.
    pub consumed: u64,
    /// Tokens in flight at the end of the window (produced − consumed,
    /// integrated from cycle 0).
    pub inflight: i64,
    /// Live tags at the end of the window (allocated − freed, integrated).
    pub live_tags: i64,
    /// Stall intervals *beginning* in this window, by [`StallReason`] index.
    pub stall_begins: [u64; 3],
    /// Stall intervals still open at the end of the window, by reason index.
    pub open_stalls: [i64; 3],
    /// Architectural loads inside the window.
    pub mem_loads: u64,
    /// Architectural stores inside the window.
    pub mem_stores: u64,
    /// L1 cache misses inside the window (always 0 under ideal memory).
    pub mem_misses: u64,
    /// Distinct cache lines touched inside the window.
    pub distinct_lines: u64,
    /// Injected fault strikes inside the window.
    pub faults: u64,
}

impl WindowStats {
    /// Total stalls open at the end of the window, all reasons.
    pub fn open_stall_total(&self) -> i64 {
        self.open_stalls.iter().sum()
    }
}

/// The finished time-series view of one run.
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// Final window width in cycles (initial width × 2^coarsenings).
    pub window: u64,
    /// How many times the window width doubled to stay within the bound.
    pub coarsenings: u32,
    /// The run's final cycle (windows cover `0..=final_cycle`).
    pub final_cycle: u64,
    /// Per-window metrics in time order.
    pub windows: Vec<WindowStats>,
    /// Per-node firing-gap dispersion across the whole run (cycles between
    /// consecutive firings of the same node).
    pub fire_gaps: LogHistogram,
}

impl TimelineReport {
    /// The timeline as a CSV table, one row per window. Byte-identical
    /// across reruns and `--jobs` settings (everything here derives from
    /// the deterministic simulation).
    pub fn to_csv(&self) -> CsvTable {
        let mut t = CsvTable::new([
            "window_start",
            "fires",
            "produced",
            "consumed",
            "inflight",
            "live_tags",
            "stall_partial_match",
            "stall_tag_starved",
            "stall_back_pressure",
            "open_partial_match",
            "open_tag_starved",
            "open_back_pressure",
            "mem_loads",
            "mem_stores",
            "mem_misses",
            "distinct_lines",
            "faults",
        ]);
        for w in &self.windows {
            t.push_row([
                w.start.to_string(),
                w.fires.to_string(),
                w.produced.to_string(),
                w.consumed.to_string(),
                w.inflight.to_string(),
                w.live_tags.to_string(),
                w.stall_begins[0].to_string(),
                w.stall_begins[1].to_string(),
                w.stall_begins[2].to_string(),
                w.open_stalls[0].to_string(),
                w.open_stalls[1].to_string(),
                w.open_stalls[2].to_string(),
                w.mem_loads.to_string(),
                w.mem_stores.to_string(),
                w.mem_misses.to_string(),
                w.distinct_lines.to_string(),
                w.faults.to_string(),
            ]);
        }
        t
    }

    /// Renders the timeline for the terminal: one sparkline per metric, a
    /// stall-reason heatmap over the open-stall levels, and the firing-gap
    /// dispersion summary.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "timeline: {} window(s) of {} cycle(s){} over {} cycle(s)\n",
            self.windows.len(),
            self.window,
            if self.coarsenings > 0 {
                format!(" ({}x coarsened)", self.coarsenings)
            } else {
                String::new()
            },
            self.final_cycle.max(1),
        ));
        let series: [(&str, Vec<f64>); 8] = [
            ("fires", self.windows.iter().map(|w| w.fires as f64).collect()),
            ("produced", self.windows.iter().map(|w| w.produced as f64).collect()),
            ("consumed", self.windows.iter().map(|w| w.consumed as f64).collect()),
            ("in flight", self.windows.iter().map(|w| w.inflight.max(0) as f64).collect()),
            ("live tags", self.windows.iter().map(|w| w.live_tags.max(0) as f64).collect()),
            (
                "mem refs",
                self.windows.iter().map(|w| (w.mem_loads + w.mem_stores) as f64).collect(),
            ),
            ("mem misses", self.windows.iter().map(|w| w.mem_misses as f64).collect()),
            ("lines", self.windows.iter().map(|w| w.distinct_lines as f64).collect()),
        ];
        for (label, vs) in &series {
            let peak = vs.iter().copied().fold(0.0f64, f64::max);
            out.push_str(&format!(
                "  {:<10} |{}| peak {}\n",
                label,
                ascii::sparkline(vs, width),
                ascii::fmt_count(peak)
            ));
        }
        let stall_rows: Vec<(String, Vec<f64>)> = StallReason::ALL
            .iter()
            .map(|r| {
                (
                    format!("open {}", r.label()),
                    self.windows.iter().map(|w| w.open_stalls[r.index()].max(0) as f64).collect(),
                )
            })
            .collect();
        out.push_str(&ascii::heatmap("  stall timeline (open intervals):", &stall_rows, width));
        if !self.fire_gaps.is_empty() {
            out.push_str(&format!("  fire gaps (cycles): {}\n", self.fire_gaps));
        }
        out
    }

    /// Attribution of a stall-dominated tail, for wedged runs: the open
    /// [`StallReason`] the run ended on (with its open count in the final
    /// window) and the number of trailing windows in which nothing fired.
    /// `None` when the final window has no open stalls — a completed run
    /// closes every interval, so only a wedge (or a timeout mid-stall)
    /// attributes.
    ///
    /// When several reasons are open at the end, the *root cause* wins over
    /// its symptoms: a tag-starved allocate strands every consumer
    /// downstream of it in partial-match stalls (and can back up queues),
    /// but nothing causes tag starvation except the pool itself. The
    /// priority is therefore tag-starved, then back-pressure, then
    /// partial-match — which is how the Fig. 11 wedge (5 starved allocates,
    /// dozens of downstream partial matches) reads as *tag starvation*.
    pub fn tail_attribution(&self) -> Option<(StallReason, i64, usize)> {
        let last = self.windows.last()?;
        if last.open_stall_total() <= 0 {
            return None;
        }
        let reason =
            [StallReason::TagStarved, StallReason::BackPressure, StallReason::PartialMatch]
                .into_iter()
                .find(|r| last.open_stalls[r.index()] > 0)?;
        let count = last.open_stalls[reason.index()];
        let tail = self.windows.iter().rev().take_while(|w| w.fires == 0).count();
        Some((reason, count, tail))
    }

    /// Mean firings per window — a quick utilization figure for summaries.
    pub fn mean_fires(&self) -> f64 {
        let fires: Vec<f64> = self.windows.iter().map(|w| w.fires as f64).collect();
        summary::mean(&fires)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(node: u32) -> ProbeEvent {
        ProbeEvent::NodeFired { node }
    }

    #[test]
    fn events_land_in_their_windows() {
        let mut tl = Timeline::new(TimelineConfig { window: 10, max_windows: 16 });
        tl.event(0, fired(1));
        tl.event(9, fired(1));
        tl.event(10, fired(2));
        tl.event(25, ProbeEvent::TokenProduced { node: 2 });
        let r = tl.report(29);
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows[0].fires, 2);
        assert_eq!(r.windows[1].fires, 1);
        assert_eq!(r.windows[2].produced, 1);
        assert_eq!(r.windows[2].inflight, 1, "level integrates forward");
    }

    #[test]
    fn out_of_order_cycles_land_in_the_right_window() {
        // The `ooo` engine's issue cycles may step backwards (probe.rs);
        // bucketing is by absolute cycle, so a late event lands where its
        // cycle says, not where it arrived.
        let mut a = Timeline::new(TimelineConfig { window: 8, max_windows: 32 });
        let mut b = Timeline::new(TimelineConfig { window: 8, max_windows: 32 });
        let events: Vec<(u64, ProbeEvent)> = vec![
            (3, fired(0)),
            (40, fired(1)),
            (7, ProbeEvent::TokenProduced { node: 0 }),
            (22, ProbeEvent::MemAccess { node: 0, addr: 16, write: false }),
            (5, ProbeEvent::TokenConsumed { node: 0, count: 1 }),
            (41, fired(1)),
            (6, fired(0)),
        ];
        for &(c, ev) in &events {
            a.event(c, ev);
        }
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(c, _)| c);
        for &(c, ev) in &sorted {
            b.event(c, ev);
        }
        let (ra, rb) = (a.report(47), b.report(47));
        assert_eq!(ra.windows, rb.windows, "window contents are arrival-order-insensitive");
        assert_eq!(ra.windows[0].fires, 2);
        assert_eq!(ra.windows[5].fires, 2);
        assert_eq!(ra.windows[0].inflight, 0, "produce and consume cancel in window 0");
    }

    #[test]
    fn stall_levels_integrate_and_stay_open() {
        let mut tl = Timeline::new(TimelineConfig { window: 4, max_windows: 64 });
        let begin = |tag, reason| ProbeEvent::StallBegin { node: 9, tag, reason };
        tl.event(0, begin(1, StallReason::TagStarved));
        tl.event(2, begin(2, StallReason::PartialMatch));
        tl.event(6, ProbeEvent::StallEnd { node: 9, tag: 2 });
        // Tag 1 never ends: it must stay open through the final window.
        let r = tl.report(30);
        let starved = StallReason::TagStarved.index();
        let partial = StallReason::PartialMatch.index();
        assert_eq!(r.windows[0].stall_begins[starved], 1);
        assert_eq!(r.windows[0].open_stalls[partial], 1);
        assert_eq!(r.windows[1].open_stalls[partial], 0, "ended in window 1");
        for w in &r.windows {
            assert_eq!(w.open_stalls[starved], 1, "unclosed stall persists to the end");
        }
        let (reason, count, tail) = r.tail_attribution().expect("stall-dominated tail");
        assert_eq!(reason, StallReason::TagStarved);
        assert_eq!(count, 1);
        assert_eq!(tail, r.windows.len(), "no window ever fired");
    }

    #[test]
    fn reopening_with_a_new_reason_switches_the_interval() {
        let mut tl = Timeline::new(TimelineConfig { window: 4, max_windows: 16 });
        tl.event(0, ProbeEvent::StallBegin { node: 1, tag: 0, reason: StallReason::PartialMatch });
        tl.event(5, ProbeEvent::StallBegin { node: 1, tag: 0, reason: StallReason::BackPressure });
        let r = tl.report(11);
        assert_eq!(r.windows[1].open_stalls[StallReason::PartialMatch.index()], 0);
        assert_eq!(r.windows[1].open_stalls[StallReason::BackPressure.index()], 1);
        assert_eq!(r.windows[2].open_stalls[StallReason::BackPressure.index()], 1);
    }

    #[test]
    fn coarsening_doubles_the_window_and_preserves_totals() {
        let mut tl = Timeline::new(TimelineConfig { window: 2, max_windows: 4 });
        for c in 0..64 {
            tl.event(c, fired(0));
            tl.event(c, ProbeEvent::MemAccess { node: 0, addr: c as i64, write: c % 2 == 0 });
        }
        assert!(tl.window() > 2, "64 cycles cannot fit 4 two-cycle windows");
        let r = tl.report(63);
        assert_eq!(r.window, 16, "2 -> 16 in three doublings: 63/16 < 4 windows");
        assert_eq!(r.coarsenings, 3);
        assert_eq!(r.windows.len(), 4);
        assert_eq!(r.windows.iter().map(|w| w.fires).sum::<u64>(), 64, "no fire lost");
        let (l, s): (u64, u64) =
            r.windows.iter().fold((0, 0), |(l, s), w| (l + w.mem_loads, s + w.mem_stores));
        assert_eq!((l, s), (32, 32));
        // Each 16-cycle window touches 16 consecutive addresses = two
        // 8-word lines.
        for w in &r.windows {
            assert_eq!(w.distinct_lines, 2);
        }
    }

    #[test]
    fn report_extends_to_the_final_cycle() {
        let mut tl = Timeline::new(TimelineConfig { window: 8, max_windows: 256 });
        tl.event(0, fired(0));
        let r = tl.report(100);
        assert_eq!(r.windows.len(), 13, "windows cover 0..=100");
        assert!(r.windows[7..].iter().all(|w| w.fires == 0));
        assert_eq!(r.tail_attribution(), None, "idle tail without open stalls is not a wedge");
    }

    #[test]
    fn fire_gap_histogram_tracks_per_node_gaps() {
        let mut tl = Timeline::default();
        for c in [0u64, 10, 20, 30] {
            tl.event(c, fired(1));
        }
        tl.event(5, fired(2));
        tl.event(6, fired(2));
        let r = tl.report(30);
        assert_eq!(r.fire_gaps.count(), 4, "three gaps of 10 plus one gap of 1");
        assert_eq!(r.fire_gaps.max(), 10);
        assert_eq!(r.fire_gaps.min(), 1);
    }

    #[test]
    fn csv_and_render_are_consistent() {
        let mut tl = Timeline::new(TimelineConfig { window: 4, max_windows: 32 });
        tl.event(0, fired(0));
        tl.event(1, ProbeEvent::TokenProduced { node: 0 });
        tl.event(9, ProbeEvent::StallBegin { node: 0, tag: 7, reason: StallReason::TagStarved });
        let r = tl.report(15);
        let csv = r.to_csv();
        assert_eq!(csv.len(), r.windows.len());
        assert_eq!(csv.header()[0], "window_start");
        let text = csv.render();
        let reparsed = CsvTable::parse(&text).expect("csv round-trips");
        assert_eq!(reparsed.rows(), csv.rows());
        let shown = r.render(32);
        assert!(shown.contains("fires"), "{shown}");
        assert!(shown.contains("open tag-starved"), "{shown}");
    }
}
