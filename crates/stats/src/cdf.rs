//! IPC histograms and cumulative distribution functions (Fig. 13).
//!
//! The paper plots, for each system, the CDF of the per-cycle IPC across all
//! applications: "the graph shows how frequently each system achieves a given
//! IPC, so an ideal system would be an `_]` shape". IPC per cycle is a small
//! integer bounded by the issue width, so an exact histogram is tiny and the
//! CDF is exact — no sampling involved.

/// Exact histogram of an integer-valued per-cycle quantity (typically IPC,
/// bounded by the machine's issue width).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IpcHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl IpcHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        IpcHistogram { counts: Vec::new(), total: 0 }
    }

    /// Records one cycle that executed `ipc` instructions.
    pub fn record(&mut self, ipc: u64) {
        let idx = ipc as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Records `n` cycles that each executed `ipc` instructions — exactly
    /// equivalent to `n` calls to [`IpcHistogram::record`]. Used by the
    /// event-driven engines to account a batch of skipped idle cycles
    /// (`ipc` 0) in one step.
    pub fn record_n(&mut self, ipc: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = ipc as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
    }

    /// Merges another histogram into this one (used to aggregate across
    /// applications, as Fig. 13 does).
    pub fn merge(&mut self, other: &IpcHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
    }

    /// Number of recorded cycles.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum recorded value (0 for an empty histogram).
    pub fn max_value(&self) -> u64 {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0) as u64
    }

    /// Mean of the recorded values — i.e. the run's average IPC.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self.counts.iter().enumerate().map(|(v, &c)| v as u128 * c as u128).sum();
        sum as f64 / self.total as f64
    }

    /// Raw bucket counts, indexed by value.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Builds the exact CDF of this histogram.
    pub fn cdf(&self) -> Cdf {
        let mut points = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            acc += c;
            if c > 0 || v + 1 == self.counts.len() {
                points.push((v as f64, acc as f64 / self.total.max(1) as f64));
            }
        }
        Cdf { points }
    }
}

/// A cumulative distribution function: sorted `(value, P[X <= value])` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cdf {
    points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Builds a CDF from raw (unsorted) samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in CDF input"));
        let n = samples.len().max(1) as f64;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (i, v) in samples.iter().enumerate() {
            let p = (i + 1) as f64 / n;
            match points.last_mut() {
                Some(last) if last.0 == *v => last.1 = p,
                _ => points.push((*v, p)),
            }
        }
        Cdf { points }
    }

    /// The `(value, cumulative probability)` steps of the CDF.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates `P[X <= value]`.
    pub fn at(&self, value: f64) -> f64 {
        let mut p = 0.0;
        for &(v, q) in &self.points {
            if v <= value {
                p = q;
            } else {
                break;
            }
        }
        p
    }

    /// Smallest value `v` with `P[X <= v] >= q` (quantile function).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.points.iter().find(|&&(_, p)| p >= q).map(|&(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = IpcHistogram::new();
        for v in [0u64, 1, 1, 2, 2, 2, 128] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.max_value(), 128);
        assert!((h.mean() - (0.0 + 1.0 + 1.0 + 2.0 + 2.0 + 2.0 + 128.0) / 7.0).abs() < 1e-12);
        assert_eq!(h.counts()[2], 3);
    }

    #[test]
    fn histogram_merge() {
        let mut a = IpcHistogram::new();
        a.record(1);
        a.record(4);
        let mut b = IpcHistogram::new();
        b.record(4);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.counts()[4], 2);
        assert_eq!(a.max_value(), 9);
    }

    /// `record_n(v, n)` must leave the histogram identical to `n` calls to
    /// `record(v)` — the engines rely on this for bit-identical IPC CDFs
    /// across ticked and event-driven runs.
    #[test]
    fn record_n_equals_repeated_record() {
        let schedule = [(0u64, 1u64), (3, 1000), (0, 0), (7, 2), (3, 1)];
        let mut batched = IpcHistogram::new();
        let mut ticked = IpcHistogram::new();
        for &(v, n) in &schedule {
            batched.record_n(v, n);
            for _ in 0..n {
                ticked.record(v);
            }
        }
        assert_eq!(batched, ticked);
    }

    #[test]
    fn histogram_cdf_is_monotone_and_ends_at_one() {
        let mut h = IpcHistogram::new();
        for v in 0..100u64 {
            h.record(v % 10);
        }
        let cdf = h.cdf();
        let pts = cdf.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_from_samples_and_quantiles() {
        let cdf = Cdf::from_samples(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert!((cdf.at(2.0) - 0.5).abs() < 1e-12);
        assert!((cdf.at(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.quantile(0.5), Some(2.0));
        assert_eq!(cdf.quantile(1.0), Some(4.0));
    }

    #[test]
    fn cdf_duplicate_values_collapse() {
        let cdf = Cdf::from_samples(vec![1.0, 1.0, 1.0]);
        assert_eq!(cdf.points().len(), 1);
        assert!((cdf.at(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_cdf() {
        let h = IpcHistogram::new();
        assert_eq!(h.cdf().points().len(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
