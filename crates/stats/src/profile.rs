//! The per-node aggregating profiler sink and its report types.
//!
//! [`NodeProfiler`] implements [`Probe`] and folds the
//! event stream into a [`ProfileReport`]: one [`NodeProfile`] per active
//! node (fire count, tokens produced/consumed, peak matching-store
//! occupancy, stall cycles broken down by [`StallReason`]) plus a per-block
//! stalled-activation time series for the ASCII heatmap. The report is
//! attached to `RunResult` by the engines' probed entry points and rendered
//! by `repro trace` as ranked hot-node and stall-attribution tables.

use std::collections::HashMap;

use crate::ascii;
use crate::csv::CsvTable;
use crate::probe::{Probe, ProbeEvent, StallReason};
use crate::trace::Trace;

/// Aggregated per-node counters for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProfile {
    /// Static node id.
    pub node: u32,
    /// The node's label (opcode + source hint).
    pub label: String,
    /// Name of the concurrent block that owns the node.
    pub block: String,
    /// Times the node fired (sums to the engine's `dyn_instrs`).
    pub fires: u64,
    /// Tokens delivered *to* this node.
    pub produced: u64,
    /// Tokens this node consumed from its matching store.
    pub consumed: u64,
    /// Peak number of tokens waiting in the node's matching store.
    pub peak_waiting: u64,
    /// Stall cycles by reason, indexed by [`StallReason::index`]. Concurrent
    /// stalled activations of one node accumulate independently, so this can
    /// exceed the run's cycle count.
    pub stall_cycles: [u64; 3],
}

impl NodeProfile {
    /// Total stall cycles across all reasons.
    pub fn total_stall(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }
}

/// Per-block stall pressure over time (for the heatmap).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockProfile {
    /// Block id.
    pub block: u32,
    /// Block name.
    pub name: String,
    /// Down-sampled time series of stalled activations in the block.
    pub stalled: Trace,
}

/// The profiler's end-of-run output.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// One entry per node that saw any activity, in node order.
    pub nodes: Vec<NodeProfile>,
    /// One entry per declared block, in block order.
    pub blocks: Vec<BlockProfile>,
    /// The run's final cycle (completion or deadlock cycle).
    pub total_cycles: u64,
    /// Working-set summary, when a [`crate::locality::WorkingSet`] sink rode
    /// on the same run (see [`ProfileReport::with_working_set`]).
    pub working_set: Option<crate::locality::WorkingSetReport>,
}

/// The header used by [`ProfileReport::to_csv`] / [`ProfileReport::nodes_from_csv`].
const CSV_HEADER: [&str; 9] = [
    "node",
    "label",
    "block",
    "fires",
    "produced",
    "consumed",
    "peak_waiting",
    "stall_partial_match",
    "stall_tag_starved",
];
/// Tenth column, split out so the array literal stays readable.
const CSV_LAST: &str = "stall_back_pressure";

impl ProfileReport {
    /// Attaches a working-set report from a locality tracker that observed
    /// the same run.
    pub fn with_working_set(mut self, ws: crate::locality::WorkingSetReport) -> Self {
        self.working_set = Some(ws);
        self
    }

    /// Total fires across all nodes (equals the engine's `dyn_instrs`).
    pub fn total_fires(&self) -> u64 {
        self.nodes.iter().map(|n| n.fires).sum()
    }

    /// Total stall cycles attributed to `reason` across all nodes.
    pub fn stall_total(&self, reason: StallReason) -> u64 {
        self.nodes.iter().map(|n| n.stall_cycles[reason.index()]).sum()
    }

    /// Nodes ranked by fire count, descending.
    pub fn hot_nodes(&self) -> Vec<&NodeProfile> {
        let mut v: Vec<&NodeProfile> = self.nodes.iter().filter(|n| n.fires > 0).collect();
        v.sort_by(|a, b| b.fires.cmp(&a.fires).then(a.node.cmp(&b.node)));
        v
    }

    /// Nodes ranked by total stall cycles, descending.
    pub fn stalled_nodes(&self) -> Vec<&NodeProfile> {
        let mut v: Vec<&NodeProfile> = self.nodes.iter().filter(|n| n.total_stall() > 0).collect();
        v.sort_by(|a, b| b.total_stall().cmp(&a.total_stall()).then(a.node.cmp(&b.node)));
        v
    }

    /// Renders the ranked hot-node table (top `top` rows).
    pub fn hot_table(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str("hot nodes (by fire count)\n");
        out.push_str(&format!(
            "  {:>4}  {:<28} {:<18} {:>10} {:>10} {:>10} {:>8}\n",
            "node", "label", "block", "fires", "produced", "consumed", "peak"
        ));
        for p in self.hot_nodes().into_iter().take(top) {
            out.push_str(&format!(
                "  {:>4}  {:<28} {:<18} {:>10} {:>10} {:>10} {:>8}\n",
                p.node,
                ascii::truncate(&p.label, 28),
                ascii::truncate(&p.block, 18),
                p.fires,
                p.produced,
                p.consumed,
                p.peak_waiting
            ));
        }
        out
    }

    /// Renders the stall-attribution table (top `top` rows), with one column
    /// per [`StallReason`]. This is the table that *explains* a Fig. 11
    /// deadlock: the wedged allocates dominate the `tag-starved` column.
    pub fn stall_table(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stall attribution (cycles; run length {} cycles)\n",
            self.total_cycles
        ));
        out.push_str(&format!(
            "  {:>4}  {:<28} {:<18} {:>13} {:>12} {:>13} {:>10}\n",
            "node", "label", "block", "partial-match", "tag-starved", "back-pressure", "total"
        ));
        for p in self.stalled_nodes().into_iter().take(top) {
            out.push_str(&format!(
                "  {:>4}  {:<28} {:<18} {:>13} {:>12} {:>13} {:>10}\n",
                p.node,
                ascii::truncate(&p.label, 28),
                ascii::truncate(&p.block, 18),
                p.stall_cycles[0],
                p.stall_cycles[1],
                p.stall_cycles[2],
                p.total_stall()
            ));
        }
        if self.stalled_nodes().is_empty() {
            out.push_str("  (no stalls recorded)\n");
        }
        out
    }

    /// Renders the per-block stall heatmap: one row per block, time on the
    /// x-axis, intensity = stalled activations.
    pub fn heatmap(&self, width: usize) -> String {
        let rows: Vec<(String, Vec<f64>)> = self
            .blocks
            .iter()
            .filter(|b| !b.stalled.is_empty())
            .map(|b| (b.name.clone(), b.stalled.points().iter().map(|&(_, v)| v as f64).collect()))
            .collect();
        ascii::heatmap("stalled activations per block over time", &rows, width)
    }

    /// Renders the full profile: hot nodes, stall attribution, heatmap, and
    /// the working-set summary when one is attached.
    pub fn render(&self, top: usize, width: usize) -> String {
        let mut out = self.hot_table(top);
        out.push('\n');
        out.push_str(&self.stall_table(top));
        out.push('\n');
        out.push_str(&self.heatmap(width));
        if let Some(ws) = &self.working_set {
            out.push('\n');
            out.push_str(&ws.render(width));
        }
        out
    }

    /// Exports the per-node profiles as a CSV table (one row per node).
    pub fn to_csv(&self) -> CsvTable {
        let mut t = CsvTable::new(CSV_HEADER.iter().copied().chain(std::iter::once(CSV_LAST)));
        for p in &self.nodes {
            t.push_row([
                p.node.to_string(),
                p.label.clone(),
                p.block.clone(),
                p.fires.to_string(),
                p.produced.to_string(),
                p.consumed.to_string(),
                p.peak_waiting.to_string(),
                p.stall_cycles[0].to_string(),
                p.stall_cycles[1].to_string(),
                p.stall_cycles[2].to_string(),
            ]);
        }
        t
    }

    /// Parses node profiles back from CSV text produced by
    /// [`ProfileReport::to_csv`] (the external post-processing round trip).
    ///
    /// # Errors
    ///
    /// Returns a message if the header or any field does not match the
    /// profile schema.
    pub fn nodes_from_csv(text: &str) -> Result<Vec<NodeProfile>, String> {
        let table = CsvTable::parse(text)?;
        let expected: Vec<&str> = CSV_HEADER.iter().copied().chain([CSV_LAST]).collect();
        if table.header() != expected {
            return Err(format!("unexpected profile CSV header: {:?}", table.header()));
        }
        let int = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| format!("bad {what} value {s:?} in profile CSV"))
        };
        let mut out = Vec::new();
        for row in table.rows() {
            out.push(NodeProfile {
                node: int(&row[0], "node")? as u32,
                label: row[1].clone(),
                block: row[2].clone(),
                fires: int(&row[3], "fires")?,
                produced: int(&row[4], "produced")?,
                consumed: int(&row[5], "consumed")?,
                peak_waiting: int(&row[6], "peak_waiting")?,
                stall_cycles: [
                    int(&row[7], "stall")?,
                    int(&row[8], "stall")?,
                    int(&row[9], "stall")?,
                ],
            });
        }
        Ok(out)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    fires: u64,
    produced: u64,
    consumed: u64,
    waiting: i64,
    peak_waiting: i64,
    stall: [u64; 3],
}

/// The per-node aggregating profiler. Feed it to an engine's `with_probe`
/// constructor (by `&mut`), then call [`NodeProfiler::report`] with the
/// run's final cycle.
#[derive(Debug, Default)]
pub struct NodeProfiler {
    block_names: Vec<String>,
    labels: Vec<(String, u32)>,
    counters: Vec<Counters>,
    open: HashMap<(u32, u64), (u64, StallReason)>,
    block_stalled: Vec<u64>,
    block_trace: Vec<Trace>,
    last_cycle: u64,
}

impl NodeProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        NodeProfiler::default()
    }

    fn ensure_node(&mut self, node: u32) {
        let need = node as usize + 1;
        if self.counters.len() < need {
            self.counters.resize(need, Counters::default());
        }
    }

    fn ensure_block(&mut self, block: u32) {
        let need = block as usize + 1;
        if self.block_names.len() < need {
            self.block_names.resize_with(need, String::new);
            self.block_stalled.resize(need, 0);
            self.block_trace.resize_with(need, Trace::new);
        }
    }

    /// Advances the per-block stall time series up to (excluding) `cycle`.
    fn advance(&mut self, cycle: u64) {
        while self.last_cycle < cycle {
            for (i, t) in self.block_trace.iter_mut().enumerate() {
                t.record(self.block_stalled[i]);
            }
            self.last_cycle += 1;
        }
    }

    fn node_block(&self, node: u32) -> u32 {
        self.labels.get(node as usize).map(|(_, b)| *b).unwrap_or(0)
    }

    fn close(&mut self, cycle: u64, node: u32, tag: u64) {
        if let Some((since, reason)) = self.open.remove(&(node, tag)) {
            self.ensure_node(node);
            self.counters[node as usize].stall[reason.index()] += cycle.saturating_sub(since);
            let block = self.node_block(node);
            self.ensure_block(block);
            self.block_stalled[block as usize] =
                self.block_stalled[block as usize].saturating_sub(1);
        }
    }

    /// Folds the stream into a [`ProfileReport`], closing still-open stall
    /// intervals at `final_cycle` (this is what attributes a deadlock's
    /// wedged tokens).
    pub fn report(mut self, final_cycle: u64) -> ProfileReport {
        let open: Vec<(u32, u64)> = self.open.keys().copied().collect();
        for (node, tag) in open {
            self.close(final_cycle, node, tag);
        }
        self.advance(final_cycle);
        let nodes = self
            .counters
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.fires > 0 || c.produced > 0 || c.consumed > 0 || c.stall.iter().any(|&s| s > 0)
            })
            .map(|(i, c)| {
                let (label, block) =
                    self.labels.get(i).cloned().unwrap_or_else(|| (format!("n{i}"), 0));
                NodeProfile {
                    node: i as u32,
                    label,
                    block: self
                        .block_names
                        .get(block as usize)
                        .filter(|n| !n.is_empty())
                        .cloned()
                        .unwrap_or_else(|| format!("block{block}")),
                    fires: c.fires,
                    produced: c.produced,
                    consumed: c.consumed,
                    peak_waiting: c.peak_waiting.max(0) as u64,
                    stall_cycles: c.stall,
                }
            })
            .collect();
        let blocks = self
            .block_trace
            .into_iter()
            .enumerate()
            .map(|(i, stalled)| BlockProfile {
                block: i as u32,
                name: if self.block_names[i].is_empty() {
                    format!("block{i}")
                } else {
                    self.block_names[i].clone()
                },
                stalled,
            })
            .collect();
        ProfileReport { nodes, blocks, total_cycles: final_cycle, working_set: None }
    }
}

impl Probe for NodeProfiler {
    fn declare_block(&mut self, block: u32, name: &str) {
        self.ensure_block(block);
        self.block_names[block as usize] = name.to_string();
    }

    fn declare_node(&mut self, node: u32, label: &str, block: u32) {
        let need = node as usize + 1;
        if self.labels.len() < need {
            self.labels.resize_with(need, || (String::new(), 0));
        }
        self.labels[node as usize] = (label.to_string(), block);
        self.ensure_node(node);
        self.ensure_block(block);
    }

    fn event(&mut self, cycle: u64, ev: ProbeEvent) {
        // The ooo engine's issue cycles can step backwards; clamp so the
        // block time series stays monotone (intervals still use real
        // cycles via `min`/`saturating_sub`).
        if cycle > self.last_cycle {
            self.advance(cycle);
        }
        match ev {
            ProbeEvent::NodeFired { node } => {
                self.ensure_node(node);
                self.counters[node as usize].fires += 1;
            }
            ProbeEvent::TokenProduced { node } => {
                self.ensure_node(node);
                let c = &mut self.counters[node as usize];
                c.produced += 1;
                c.waiting += 1;
                c.peak_waiting = c.peak_waiting.max(c.waiting);
            }
            ProbeEvent::TokenConsumed { node, count } => {
                self.ensure_node(node);
                let c = &mut self.counters[node as usize];
                c.consumed += count as u64;
                c.waiting -= count as i64;
            }
            ProbeEvent::StallBegin { node, tag, reason } => {
                self.close(cycle, node, tag);
                self.ensure_node(node);
                self.open.insert((node, tag), (cycle, reason));
                let block = self.node_block(node);
                self.ensure_block(block);
                self.block_stalled[block as usize] += 1;
            }
            ProbeEvent::StallEnd { node, tag } => {
                self.close(cycle, node, tag);
            }
            ProbeEvent::TagAllocated { .. }
            | ProbeEvent::TagFreed { .. }
            | ProbeEvent::TagChanged { .. }
            | ProbeEvent::BlockEnter { .. }
            | ProbeEvent::BlockExit { .. }
            | ProbeEvent::FaultInjected { .. }
            | ProbeEvent::MemAccess { .. }
            | ProbeEvent::MemMiss { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfileReport {
        let mut p = NodeProfiler::new();
        p.declare_block(0, "main");
        p.declare_block(1, "loop");
        p.declare_node(0, "load", 0);
        p.declare_node(1, "alloc", 1);
        p.event(0, ProbeEvent::TokenProduced { node: 0 });
        p.event(0, ProbeEvent::TokenProduced { node: 0 });
        p.event(1, ProbeEvent::NodeFired { node: 0 });
        p.event(1, ProbeEvent::TokenConsumed { node: 0, count: 2 });
        p.event(2, ProbeEvent::StallBegin { node: 1, tag: 7, reason: StallReason::TagStarved });
        p.event(6, ProbeEvent::StallEnd { node: 1, tag: 7 });
        p.event(7, ProbeEvent::StallBegin { node: 0, tag: 0, reason: StallReason::PartialMatch });
        p.report(10)
    }

    #[test]
    fn aggregates_fires_tokens_and_stalls() {
        let r = sample_report();
        assert_eq!(r.total_cycles, 10);
        assert_eq!(r.total_fires(), 1);
        let load = &r.nodes[0];
        assert_eq!((load.fires, load.produced, load.consumed, load.peak_waiting), (1, 2, 2, 2));
        // Open partial-match interval closed at the final cycle: 10 - 7.
        assert_eq!(load.stall_cycles[StallReason::PartialMatch.index()], 3);
        let alloc = &r.nodes[1];
        assert_eq!(alloc.stall_cycles[StallReason::TagStarved.index()], 4);
        assert_eq!(r.stall_total(StallReason::TagStarved), 4);
        assert_eq!(r.stalled_nodes()[0].node, 1);
    }

    #[test]
    fn reason_switch_splits_the_interval() {
        let mut p = NodeProfiler::new();
        p.declare_node(0, "n", 0);
        p.event(0, ProbeEvent::StallBegin { node: 0, tag: 1, reason: StallReason::PartialMatch });
        p.event(3, ProbeEvent::StallBegin { node: 0, tag: 1, reason: StallReason::BackPressure });
        p.event(8, ProbeEvent::StallEnd { node: 0, tag: 1 });
        let r = p.report(8);
        assert_eq!(r.nodes[0].stall_cycles, [3, 0, 5]);
    }

    #[test]
    fn block_heatmap_series_tracks_stalls() {
        let r = sample_report();
        let looped = r.blocks.iter().find(|b| b.name == "loop").unwrap();
        // Block 1's alloc stalled cycles 2..6 → the series peaks at 1.
        assert_eq!(looped.stalled.peak(), 1);
        assert_eq!(looped.stalled.cycles(), 10);
        assert!(r.render(8, 60).contains("tag-starved"));
    }

    #[test]
    fn csv_round_trip() {
        let r = sample_report();
        let text = r.to_csv().render();
        let back = ProfileReport::nodes_from_csv(&text).unwrap();
        assert_eq!(back, r.nodes);
    }

    #[test]
    fn csv_rejects_bad_input() {
        assert!(ProfileReport::nodes_from_csv("a,b\n1,2\n").is_err());
        let r = sample_report();
        let mangled = r.to_csv().render().replace("main", "\u{1},bad").replacen('1', "x", 1);
        assert!(ProfileReport::nodes_from_csv(&mangled).is_err());
    }
}
