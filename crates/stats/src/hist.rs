//! Dependency-free log-bucketed histogram for latency/dispersion summaries.
//!
//! [`LogHistogram`] is an HDR-style histogram over `u64` values with **two
//! sub-buckets per power of two**, so any recorded value lands in a bucket
//! whose upper edge is at most 1.5× the value. That bounds the error of
//! every quantile estimate (see *Quantile semantics* below) while keeping
//! the whole structure a fixed 128-slot array — mergeable across worker
//! threads with a plain element-wise add, no allocation, no dependencies.
//!
//! # Bucket math
//!
//! | value `v`            | bucket index            | bucket range                         |
//! |----------------------|-------------------------|--------------------------------------|
//! | `0`                  | `0`                     | `[0, 0]`                             |
//! | `1`                  | `1`                     | `[1, 1]`                             |
//! | `v ≥ 2`, `p = ⌊log₂ v⌋` | `2p + s`, `s ∈ {0,1}` | `s = 0`: `[2^p, 1.5·2^p)`; `s = 1`: `[1.5·2^p, 2^(p+1))` |
//!
//! With `p ≤ 63` the largest index is `2·63 + 1 = 127`, hence
//! [`LogHistogram::BUCKETS`] `= 128`. The exact minimum, maximum, count and
//! sum are tracked alongside the buckets, so `min()`/`max()`/`mean()` are
//! exact even though per-bucket resolution is logarithmic.
//!
//! # Quantile semantics
//!
//! [`LogHistogram::quantile`]`(q)` returns the **upper edge** of the first
//! bucket whose cumulative count reaches `ceil(q·n)` (clamped to the exact
//! observed `max()`). The result is therefore never below the true
//! q-quantile of the recorded values, and never more than 1.5× above it —
//! a documented invariant defended by property tests in this module.

use std::fmt;

/// Fixed-size log-bucketed histogram of `u64` samples (2 sub-buckets per
/// power of two; see the module docs for the exact bucket math).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; LogHistogram::BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Number of buckets: indices `0` and `1` for the exact values 0 and 1,
    /// then two sub-buckets for each power-of-two decade up to `2^63`.
    pub const BUCKETS: usize = 128;

    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { buckets: [0; Self::BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index for a value (total order preserved: `v <= w` implies
    /// `index(v) <= index(w)`).
    fn index(v: u64) -> usize {
        match v {
            0 => 0,
            1 => 1,
            _ => {
                let p = 63 - v.leading_zeros() as usize; // ⌊log₂ v⌋, ≥ 1
                let half = 1u64 << (p - 1); // 2^(p-1)
                let sub = usize::from(v - (1u64 << p) >= half);
                2 * p + sub
            }
        }
    }

    /// Inclusive upper edge of a bucket: the largest value that maps to it.
    fn upper_edge(idx: usize) -> u64 {
        match idx {
            0 => 0,
            1 => 1,
            _ => {
                let p = idx / 2;
                let sub = idx % 2;
                if sub == 0 {
                    // [2^p, 1.5·2^p) — top value is 2^p + 2^(p-1) - 1.
                    (1u64 << p) + (1u64 << (p - 1)) - 1
                } else if p == 63 {
                    u64::MAX
                } else {
                    (1u64 << (p + 1)) - 1
                }
            }
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` occurrences of the same sample.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::index(v)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Merging is exact: the result
    /// is identical to having recorded both sample streams into one
    /// histogram (property-tested below).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// q-quantile estimate for `q` in `[0, 1]`: the upper edge of the first
    /// bucket whose cumulative count reaches `ceil(q·n)`, clamped to the
    /// exact observed maximum. Never below the true quantile, never more
    /// than 1.5× above it; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Self::upper_edge(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Convenience: the (p50, p90, p99) triple.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.90), self.quantile(0.99))
    }
}

impl fmt::Display for LogHistogram {
    /// `n=… min=… p50=… p90=… p99=… max=…` one-line summary.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (p50, p90, p99) = self.percentiles();
        write!(
            f,
            "n={} min={} p50={} p90={} p99={} max={}",
            self.count,
            self.min(),
            p50,
            p90,
            p99,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic PRNG (xorshift*) so the property tests need no
    /// external crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn index_is_monotone_and_edges_are_consistent() {
        // Every bucket's upper edge maps back into that bucket, and the
        // next value maps strictly past it.
        for idx in 0..LogHistogram::BUCKETS {
            let hi = LogHistogram::upper_edge(idx);
            assert_eq!(LogHistogram::index(hi), idx, "upper edge of bucket {idx}");
            if hi < u64::MAX {
                assert_eq!(LogHistogram::index(hi + 1), idx + 1, "value after bucket {idx}");
            }
        }
    }

    #[test]
    fn u64_edge_values() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, u64::MAX - 1, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(LogHistogram::index(u64::MAX), LogHistogram::BUCKETS - 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantile_bounds_hold_on_random_streams() {
        // Invariant: true_q <= estimate <= 1.5 * true_q (+1 covers the
        // integer edges around tiny values).
        let mut rng = Rng(0x5EED_1234_ABCD_0001);
        for round in 0..50 {
            let n = 1 + (rng.next() % 500) as usize;
            let mut h = LogHistogram::new();
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix scales: small counts and wide 64-bit values.
                let v = match rng.next() % 4 {
                    0 => rng.next() % 16,
                    1 => rng.next() % 10_000,
                    2 => rng.next() % 1_000_000_000,
                    _ => rng.next(),
                };
                h.record(v);
                vals.push(v);
            }
            vals.sort_unstable();
            for &q in &[0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
                let truth = exact_quantile(&vals, q);
                let est = h.quantile(q);
                assert!(est >= truth, "round {round} q={q}: est {est} < truth {truth}");
                let bound = (truth as u128) * 3 / 2 + 1;
                assert!(u128::from(est) <= bound, "round {round} q={q}: est {est} > 1.5*{truth}");
            }
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut rng = Rng(0xC0FF_EE00_DEAD_BEEF);
        for _ in 0..20 {
            let mut a = LogHistogram::new();
            let mut b = LogHistogram::new();
            let mut all = LogHistogram::new();
            for _ in 0..(rng.next() % 200) {
                let v = rng.next() >> (rng.next() % 60);
                a.record(v);
                all.record(v);
            }
            for _ in 0..(rng.next() % 200) {
                let v = rng.next() >> (rng.next() % 60);
                b.record(v);
                all.record(v);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            assert_eq!(merged, all, "merge must equal recording the concatenated stream");
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(7, 5);
        a.record_n(0, 2);
        a.record_n(9, 0);
        for _ in 0..5 {
            b.record(7);
        }
        b.record(0);
        b.record(0);
        assert_eq!(a, b);
    }

    #[test]
    fn exact_stats_and_display() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert!((h.mean() - 20.0).abs() < 1e-9);
        let s = h.to_string();
        assert!(s.starts_with("n=3 min=10"), "display: {s}");
    }
}
