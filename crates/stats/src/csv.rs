//! Minimal CSV writing for figure data.
//!
//! Every `repro` subcommand can dump its raw series to CSV (via `--csv DIR`)
//! so the figures can be re-plotted with external tooling. We only ever write
//! simple numeric/label tables, so a dependency-free writer suffices.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory CSV table with a fixed header.
#[derive(Debug, Clone)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        CsvTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "CSV row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column names.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Parses CSV text produced by [`CsvTable::render`] back into a table,
    /// honouring the same quoting rules (quoted fields may contain commas,
    /// doubled quotes, and newlines).
    ///
    /// # Errors
    ///
    /// Returns a message on unterminated quotes, stray quote characters, or
    /// rows whose width differs from the header's.
    pub fn parse(text: &str) -> Result<CsvTable, String> {
        let mut records: Vec<Vec<String>> = Vec::new();
        let mut row: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut chars = text.chars().peekable();
        let mut saw_any = false;
        while let Some(c) = chars.next() {
            saw_any = true;
            if in_quotes {
                match c {
                    '"' if chars.peek() == Some(&'"') => {
                        chars.next();
                        field.push('"');
                    }
                    '"' => in_quotes = false,
                    c => field.push(c),
                }
            } else {
                match c {
                    '"' if field.is_empty() => in_quotes = true,
                    '"' => return Err("stray quote inside unquoted field".into()),
                    ',' => row.push(std::mem::take(&mut field)),
                    '\r' => {}
                    '\n' => {
                        row.push(std::mem::take(&mut field));
                        records.push(std::mem::take(&mut row));
                    }
                    c => field.push(c),
                }
            }
        }
        if in_quotes {
            return Err("unterminated quoted field".into());
        }
        if !field.is_empty() || !row.is_empty() {
            row.push(field);
            records.push(row);
        }
        if !saw_any || records.is_empty() {
            return Err("empty CSV input".into());
        }
        let header = records.remove(0);
        for (i, r) in records.iter().enumerate() {
            if r.len() != header.len() {
                return Err(format!(
                    "row {} has {} fields, header has {}",
                    i + 1,
                    r.len(),
                    header.len()
                ));
            }
        }
        Ok(CsvTable { header, rows: records })
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes the table, quoting fields that contain commas, quotes, or
    /// newlines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, field) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if field.contains(',') || field.contains('"') || field.contains('\n') {
                    let escaped = field.replace('"', "\"\"");
                    let _ = write!(out, "\"{escaped}\"");
                } else {
                    out.push_str(field);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the table to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_round_trip() {
        let mut t = CsvTable::new(["x", "y"]);
        t.push_row(["1", "2"]);
        t.push_row(["3", "4"]);
        assert_eq!(t.render(), "x,y\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn quoting() {
        let mut t = CsvTable::new(["a"]);
        t.push_row(["has,comma"]);
        t.push_row(["has\"quote"]);
        let s = t.render();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn parse_round_trips_quoting() {
        let mut t = CsvTable::new(["label", "v"]);
        t.push_row(["plain", "1"]);
        t.push_row(["has,comma", "2"]);
        t.push_row(["has\"quote", "3"]);
        t.push_row(["multi\nline", "4"]);
        let back = CsvTable::parse(&t.render()).unwrap();
        assert_eq!(back.header(), t.header());
        assert_eq!(back.rows(), t.rows());
        assert_eq!(back.render(), t.render());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(CsvTable::parse("").is_err());
        assert!(CsvTable::parse("a,b\n1\n").is_err(), "width mismatch");
        assert!(CsvTable::parse("a\n\"open\n").is_err(), "unterminated quote");
        assert!(CsvTable::parse("a\nx\"y\n").is_err(), "stray quote");
    }

    #[test]
    fn write_to_disk() {
        let mut t = CsvTable::new(["v"]);
        t.push_row(["42"]);
        let dir = std::env::temp_dir().join("tyr_stats_csv_test");
        let path = dir.join("sub").join("t.csv");
        t.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "v\n42\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
