//! Per-cycle time series with bounded memory.
//!
//! Simulations in this repository can run for tens of millions of cycles
//! (Sec. VI sizes inputs for 50M–1B dynamic instructions). Storing one sample
//! per cycle would dominate memory, so [`Trace`] keeps at most
//! [`Trace::MAX_POINTS`] *bucketed* samples: whenever the buffer fills, the
//! stride doubles and adjacent buckets are merged. Within a bucket we keep the
//! **maximum** so that the rendered curve never under-reports peaks — the
//! quantity the paper cares about (peak live state). Peak and mean over the
//! whole run are tracked exactly, independent of bucketing.

/// A down-sampled per-cycle time series of a non-negative quantity
/// (live tokens, IPC, …) with exact peak and mean.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Bucketed samples; each covers `stride` consecutive cycles and stores
    /// the maximum value observed in that window.
    buckets: Vec<u64>,
    /// Number of cycles covered by one bucket.
    stride: u64,
    /// Cycles accumulated into the (not yet pushed) current bucket.
    pending_cycles: u64,
    /// Max value within the current partial bucket.
    pending_max: u64,
    /// Total cycles recorded.
    cycles: u64,
    /// Exact running peak.
    peak: u64,
    /// Exact running sum (for the mean).
    sum: u128,
}

impl Trace {
    /// Maximum number of retained buckets before the stride doubles.
    pub const MAX_POINTS: usize = 8192;

    /// Creates an empty trace with stride 1.
    pub fn new() -> Self {
        Trace {
            buckets: Vec::new(),
            stride: 1,
            pending_cycles: 0,
            pending_max: 0,
            cycles: 0,
            peak: 0,
            sum: 0,
        }
    }

    /// Records the value observed during one cycle.
    pub fn record(&mut self, value: u64) {
        self.cycles += 1;
        self.sum += value as u128;
        if value > self.peak {
            self.peak = value;
        }
        self.pending_max = self.pending_max.max(value);
        self.pending_cycles += 1;
        if self.pending_cycles == self.stride {
            self.push_bucket();
        }
    }

    /// Records the same value for `n` consecutive cycles, exactly as if
    /// [`Trace::record`] had been called `n` times. This is the clock-jump
    /// entry point: an event-driven engine that skips `n` idle cycles must
    /// leave the trace bit-identical to the ticked engine, including bucket
    /// boundaries and mid-batch stride doubling, so the batch is folded in
    /// whole-bucket chunks rather than replayed per cycle.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.cycles += n;
        self.sum += value as u128 * n as u128;
        if value > self.peak {
            self.peak = value;
        }
        let mut left = n;
        while left > 0 {
            // `stride` can double inside push_bucket, so the chunk size is
            // recomputed every iteration.
            let take = left.min(self.stride - self.pending_cycles);
            self.pending_max = self.pending_max.max(value);
            self.pending_cycles += take;
            left -= take;
            if self.pending_cycles == self.stride {
                self.push_bucket();
            }
        }
    }

    fn push_bucket(&mut self) {
        self.buckets.push(self.pending_max);
        self.pending_cycles = 0;
        self.pending_max = 0;
        if self.buckets.len() >= Self::MAX_POINTS {
            // Double the stride: merge adjacent buckets by max.
            let merged: Vec<u64> =
                self.buckets.chunks(2).map(|c| c.iter().copied().max().unwrap_or(0)).collect();
            self.buckets = merged;
            self.stride *= 2;
        }
    }

    /// Total number of cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Exact maximum value over all recorded cycles.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Exact arithmetic mean over all recorded cycles (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sum as f64 / self.cycles as f64
        }
    }

    /// Number of cycles each returned point covers.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The bucketed series: `(start_cycle, max_value_in_bucket)` pairs,
    /// including the current partial bucket.
    pub fn points(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> =
            self.buckets.iter().enumerate().map(|(i, &v)| (i as u64 * self.stride, v)).collect();
        if self.pending_cycles > 0 {
            out.push((self.buckets.len() as u64 * self.stride, self.pending_max));
        }
        out
    }

    /// Returns `true` if no cycles have been recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.peak(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.points().len(), 0);
    }

    #[test]
    fn exact_peak_and_mean_small() {
        let mut t = Trace::new();
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            t.record(v);
        }
        assert_eq!(t.peak(), 9);
        assert_eq!(t.cycles(), 8);
        assert!((t.mean() - 31.0 / 8.0).abs() < 1e-12);
        assert_eq!(t.points().len(), 8);
        assert_eq!(t.stride(), 1);
    }

    #[test]
    fn downsampling_preserves_peak() {
        let mut t = Trace::new();
        let n = (Trace::MAX_POINTS as u64) * 5 + 17;
        for i in 0..n {
            t.record(if i == 12_345 { 1_000_000 } else { i % 100 });
        }
        assert_eq!(t.peak(), 1_000_000);
        assert_eq!(t.cycles(), n);
        assert!(t.points().len() <= Trace::MAX_POINTS + 1);
        assert!(t.stride() > 1);
        // The spike must survive bucketing (buckets keep the max).
        let max_point = t.points().iter().map(|&(_, v)| v).max().unwrap();
        assert_eq!(max_point, 1_000_000);
    }

    #[test]
    fn points_cover_all_cycles() {
        let mut t = Trace::new();
        for i in 0..100_000u64 {
            t.record(i);
        }
        let pts = t.points();
        // Monotone non-decreasing start cycles, spaced by stride.
        for w in pts.windows(2) {
            assert_eq!(w[1].0 - w[0].0, t.stride());
        }
        let covered = pts.last().unwrap().0 + t.stride();
        assert!(covered >= t.cycles());
    }

    #[test]
    fn exactly_max_points_records_triggers_one_merge() {
        let mut t = Trace::new();
        for i in 0..Trace::MAX_POINTS as u64 {
            t.record(i);
        }
        // The MAX_POINTS-th push fills the buffer, so the stride doubles
        // immediately and adjacent buckets merge by max.
        assert_eq!(t.stride(), 2);
        assert_eq!(t.points().len(), Trace::MAX_POINTS / 2);
        // Merged bucket k covers cycles {2k, 2k+1}; values were the cycle
        // index, so each bucket holds the odd (larger) one.
        let pts = t.points();
        assert_eq!(pts[0], (0, 1));
        assert_eq!(pts[1], (2, 3));
        assert_eq!(
            *pts.last().unwrap(),
            ((Trace::MAX_POINTS as u64 - 2), Trace::MAX_POINTS as u64 - 1)
        );
        assert_eq!(t.cycles(), Trace::MAX_POINTS as u64);
    }

    #[test]
    fn one_past_max_points_lands_in_partial_bucket() {
        let mut t = Trace::new();
        for i in 0..=Trace::MAX_POINTS as u64 {
            t.record(i);
        }
        // One extra record after the merge starts a new stride-2 partial
        // bucket, which points() must still expose.
        assert_eq!(t.stride(), 2);
        assert_eq!(t.points().len(), Trace::MAX_POINTS / 2 + 1);
        assert_eq!(
            *t.points().last().unwrap(),
            (Trace::MAX_POINTS as u64, Trace::MAX_POINTS as u64)
        );
        assert_eq!(t.cycles(), Trace::MAX_POINTS as u64 + 1);
        assert_eq!(t.peak(), Trace::MAX_POINTS as u64);
    }

    #[test]
    fn merge_keeps_peak_in_every_boundary_position() {
        // A spike in either half of a merged pair must survive the merge:
        // the heatmaps are built on points(), not just the scalar peak.
        for spike_at in [0u64, 1, Trace::MAX_POINTS as u64 - 2, Trace::MAX_POINTS as u64 - 1] {
            let mut t = Trace::new();
            for i in 0..Trace::MAX_POINTS as u64 {
                t.record(if i == spike_at { 999 } else { 1 });
            }
            assert_eq!(t.stride(), 2, "spike_at={spike_at}");
            let pts = t.points();
            let bucket = (spike_at / 2) as usize;
            assert_eq!(pts[bucket].1, 999, "spike_at={spike_at} lost by the merge");
            assert_eq!(pts.iter().filter(|&&(_, v)| v == 999).count(), 1);
        }
    }

    /// `record_n(v, n)` must be indistinguishable from `n` calls to
    /// `record(v)` — including bucket contents and stride — across batch
    /// sizes that land inside, exactly on, and far past bucket boundaries
    /// (and past the MAX_POINTS merge, where the stride doubles mid-batch).
    #[test]
    fn record_n_equals_repeated_record() {
        let m = Trace::MAX_POINTS as u64;
        let schedules: Vec<Vec<(u64, u64)>> = vec![
            vec![(3, 1), (7, 5), (2, 1)],
            vec![(9, m - 1), (1, 1), (4, 3)],
            vec![(5, m), (6, m)],
            vec![(8, 3 * m + 17), (0, 2), (8, m / 2)],
            vec![(1, 10 * m + 1)],
        ];
        for schedule in schedules {
            let mut batched = Trace::new();
            let mut ticked = Trace::new();
            for &(v, n) in &schedule {
                batched.record_n(v, n);
                for _ in 0..n {
                    ticked.record(v);
                }
            }
            assert_eq!(batched, ticked, "schedule {schedule:?}");
        }
    }

    #[test]
    fn record_n_zero_is_a_no_op() {
        let mut t = Trace::new();
        t.record(5);
        let before = t.clone();
        t.record_n(9, 0);
        assert_eq!(t, before);
    }

    #[test]
    fn mean_of_constant_series() {
        let mut t = Trace::new();
        for _ in 0..50_000 {
            t.record(42);
        }
        assert_eq!(t.peak(), 42);
        assert!((t.mean() - 42.0).abs() < 1e-12);
    }
}
