//! Elaborated dataflow graphs.
//!
//! A [`Dfg`] is the executable artifact produced by the lowering passes: a
//! set of instruction nodes wired output-port → input-port, partitioned into
//! *concurrent blocks* (Sec. III). Nodes implement the dataflow firing rule;
//! the engines in `tyr-sim` give the graph its operational semantics.
//!
//! The node set is Table I of the paper (arithmetic, `load`/`store`,
//! `steer`/`join`, and the token-synchronization instructions `allocate`,
//! `free`, `changeTag`, `extractTag`) plus the linkage/plumbing nodes any
//! concrete compiler needs (`Source`, `Sink`, `Merge`, and the
//! ordered-dataflow `CMerge`).

use std::fmt;

use tyr_ir::{AluOp, Value};

/// Identifies a node within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a concurrent block (and its local tag space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cb{}", self.0)
    }
}

/// The root block (the entry function's single context).
pub const ROOT_BLOCK: BlockId = BlockId(0);

/// An input-port reference: `(node, input index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// Target node.
    pub node: NodeId,
    /// Input port index on the target.
    pub port: u16,
}

impl PortRef {
    /// Encodes this port as an integer for dynamic routing
    /// ([`NodeKind::ChangeTagDyn`]); the paper's changeTag routes tokens to a
    /// dynamic `(instruction, operand)` location for arbitrary-caller
    /// returns.
    pub fn encode(self) -> Value {
        ((self.node.0 as Value) << 16) | self.port as Value
    }

    /// Decodes an encoded port.
    pub fn decode(v: Value) -> PortRef {
        PortRef { node: NodeId((v >> 16) as u32), port: (v & 0xFFFF) as u16 }
    }
}

/// Reservation discipline for [`NodeKind::Allocate`] (Sec. IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// An allocate on the *external* edge into a tail-recursive block (a
    /// loop entry). Reserves one spare tag for the backedge: it never
    /// consumes either of the last two tags without the context being ready,
    /// and never consumes the last one at all.
    External,
    /// The allocate on a loop's backedge (tail-recursive self edge). May
    /// take the last tag, but only once the context is ready.
    Tail,
    /// An allocate into a non-recursive block (a function call). No spare
    /// tag is needed; may take the last tag once ready.
    Call,
}

impl AllocKind {
    /// Number of tags that must remain un-popped for other edges.
    pub fn reserve(self) -> usize {
        match self {
            AllocKind::External => 1,
            AllocKind::Tail | AllocKind::Call => 0,
        }
    }
}

/// Instruction opcodes of the elaborated graph.
///
/// Port conventions (inputs `inN` / outputs `outN`) are documented per
/// variant; `ctl` denotes a zero-data token `<t, ∅>` used for the free
/// barrier (present only in lowering modes that build barriers).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Arithmetic. `in0`,`in1` → `out0`.
    Alu(AluOp),
    /// Memory read. `in0` = address → `out0` = value.
    Load,
    /// Memory write. `in0` = address, `in1` = value → `out0` = ctl.
    Store,
    /// Atomic fetch-add. `in0` = address, `in1` = addend → `out0` = ctl.
    StoreAdd,
    /// If-converted select: `in0` = condition, `in1` = on-true,
    /// `in2` = on-false → `out0`. Strict (waits for all three inputs), as in
    /// classic if-conversion where both sides are computed.
    Select,
    /// Conditional route. `in0` = decider, `in1` = data →
    /// `out0` = data when decider ≠ 0, `out1` = data when decider = 0,
    /// `out2` = ctl (unconditional).
    Steer,
    /// Nondeterministic merge: exactly one of its inputs arrives per
    /// context. `in0..inN` → `out0` = the arriving token.
    Merge,
    /// Barrier: waits for all inputs, then `out0` = copy of `in0`.
    Join,
    /// Tag allocation (Sec. IV-A). `in0` = request `<t,∅>`,
    /// `in1` = ready `<t,∅>` → `out0` = `<t, t'>` (the new tag as data),
    /// `out1` = ctl `<t,∅>` emitted when `ready` is consumed.
    ///
    /// Firing rule: pops immediately on `request` when
    /// `free > reserve + 1`; pops on `request`+`ready` when
    /// `free > reserve`; otherwise waits.
    Allocate {
        /// The tag space allocated from.
        space: BlockId,
        /// Reservation discipline.
        kind: AllocKind,
    },
    /// Unbounded tag generation (naïve unordered dataflow's `T` node).
    /// `in0` = request `<t,∅>` → `out0` = `<t, t'>` with a globally fresh
    /// `t'`.
    NewTag,
    /// Returns a tag to its space's free list. `in0` = `<t,∅>`; no outputs.
    Free {
        /// The tag space freed into.
        space: BlockId,
    },
    /// Tag translation: `(in0 = <t,t'>, in1 = <t,data>)` →
    /// `out0` = `<t',data>` (static target), `out1` = ctl `<t,∅>`.
    ChangeTag,
    /// Dynamically-routed tag translation for function returns:
    /// `(in0 = <t,t'>, in1 = <t,target>, in2 = <t,data>)` →
    /// `out0` = `<t',data>` delivered to the [`PortRef::decode`]d target,
    /// `out1` = ctl `<t,∅>`.
    ChangeTagDyn,
    /// `in0` = `<t,∅>` → `out0` = `<t,t>` (the tag as data).
    ExtractTag,
    /// Program entry: fires once at cycle 0, emitting the program arguments
    /// (one per output port) with the root tag.
    Source,
    /// Program exit: the program completes when all inputs have arrived.
    Sink,
    /// Materializes a constant: `in0` = trigger `<t,∅>` → `out0` = `<t,c>`.
    /// Used where a constant must become a *token* (e.g. a constant merged
    /// out of a conditional); constants feeding ordinary instructions are
    /// immediates instead.
    Const(Value),
    /// Ordered-dataflow controlled merge. `in0` = control, `in1` = initial
    /// side, `in2` = backedge side → `out0`. Pops `in1` when control = 0,
    /// `in2` otherwise. `initial_ctl` tokens are pre-loaded into the control
    /// FIFO at reset (the classic "take-initial-first" trick).
    CMerge {
        /// Tokens pre-loaded into the control FIFO.
        initial_ctl: Vec<Value>,
    },
}

impl NodeKind {
    /// Short mnemonic for printing/DOT.
    pub fn mnemonic(&self) -> String {
        match self {
            NodeKind::Alu(op) => op.mnemonic().to_string(),
            NodeKind::Select => "select".into(),
            NodeKind::Load => "load".into(),
            NodeKind::Store => "store".into(),
            NodeKind::StoreAdd => "store+".into(),
            NodeKind::Steer => "steer".into(),
            NodeKind::Merge => "merge".into(),
            NodeKind::Join => "join".into(),
            NodeKind::Allocate { kind, .. } => match kind {
                AllocKind::External => "alloc.ext".into(),
                AllocKind::Tail => "alloc.tail".into(),
                AllocKind::Call => "alloc.call".into(),
            },
            NodeKind::NewTag => "newtag".into(),
            NodeKind::Free { .. } => "free".into(),
            NodeKind::ChangeTag => "changetag".into(),
            NodeKind::ChangeTagDyn => "changetag.dyn".into(),
            NodeKind::ExtractTag => "extracttag".into(),
            NodeKind::Const(c) => format!("const {c}"),
            NodeKind::Source => "source".into(),
            NodeKind::Sink => "sink".into(),
            NodeKind::CMerge { .. } => "cmerge".into(),
        }
    }
}

/// How an input port is fed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InKind {
    /// Receives tokens from producer outputs.
    Wire,
    /// An immediate baked into the instruction; never carries tokens.
    Imm(Value),
}

/// One instruction node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The opcode.
    pub kind: NodeKind,
    /// The concurrent block (tag space) this node's tokens live in.
    pub block: BlockId,
    /// Input ports.
    pub ins: Vec<InKind>,
    /// Output ports: targets per port. An empty target list means tokens on
    /// that port are discarded at zero cost (the edge does not exist).
    pub outs: Vec<Vec<PortRef>>,
    /// Diagnostic label.
    pub label: String,
}

/// Metadata for one concurrent block.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// Human-readable name: function name or loop label.
    pub name: String,
    /// The lexically-enclosing block, if any.
    pub parent: Option<BlockId>,
    /// Whether the block has a tail-recursive self edge (it's a loop).
    pub is_loop: bool,
}

/// One static wire of a [`Dfg`]: producer output port → consumer input
/// port. Produced by [`Dfg::edges`]; the unit of reasoning for per-edge
/// analyses (the ordered engine's FIFO capacities are per consumer port,
/// i.e. per edge bundle sharing a consumer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producer node.
    pub from: NodeId,
    /// Producer output port.
    pub from_port: u16,
    /// Consumer node.
    pub to: NodeId,
    /// Consumer input port.
    pub to_port: u16,
}

/// An elaborated dataflow graph.
#[derive(Debug, Clone)]
pub struct Dfg {
    /// All nodes.
    pub nodes: Vec<Node>,
    /// All concurrent blocks; index 0 is the root.
    pub blocks: Vec<BlockInfo>,
    /// The unique [`NodeKind::Source`].
    pub source: NodeId,
    /// The unique [`NodeKind::Sink`].
    pub sink: NodeId,
    /// Number of program return values (the first `n_returns` sink inputs).
    pub n_returns: usize,
}

impl Dfg {
    /// The node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Maximum number of *wired* input ports across nodes (the `M` of
    /// Theorem 2's `T · N · M` bound).
    pub fn max_wired_inputs(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.ins.iter().filter(|i| matches!(i, InKind::Wire)).count())
            .max()
            .unwrap_or(0)
    }

    /// Iterates every static wire, in producer order. Dynamically routed
    /// `changeTag.dyn` deliveries are not static wires and are not
    /// included (see the verifier's `dyn_targets` for those).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes.iter().enumerate().flat_map(|(ni, n)| {
            n.outs.iter().enumerate().flat_map(move |(q, targets)| {
                targets.iter().map(move |t| Edge {
                    from: NodeId(ni as u32),
                    from_port: q as u16,
                    to: t.node,
                    to_port: t.port,
                })
            })
        })
    }

    /// Looks up a block id by name.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.name == name).map(|i| BlockId(i as u32))
    }

    /// Structural sanity check, run by every lowering before returning:
    ///
    /// * every edge targets an existing, `Wire` input port;
    /// * every non-source node has at least one wired input (a node with
    ///   only immediates could never fire — or would fire forever in the
    ///   ordered engine);
    /// * `Allocate`/`Free` reference existing tag spaces, and every space
    ///   with an `Allocate` also has a `Free` (tags must recycle) unless the
    ///   graph is an unbounded elaboration (no `Free` nodes at all);
    /// * node block ids are in range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        let any_free = self.nodes.iter().any(|n| matches!(n.kind, NodeKind::Free { .. }));
        let mut alloc_spaces = Vec::new();
        let mut free_spaces = Vec::new();
        for (ni, n) in self.nodes.iter().enumerate() {
            if n.block.0 as usize >= self.blocks.len() {
                return Err(format!("n{ni} ('{}') has out-of-range block {}", n.label, n.block));
            }
            if !matches!(n.kind, NodeKind::Source)
                && !n.ins.iter().any(|i| matches!(i, InKind::Wire))
            {
                return Err(format!("n{ni} ('{}') has no wired inputs", n.label));
            }
            match &n.kind {
                NodeKind::Allocate { space, .. } | NodeKind::Free { space } => {
                    if space.0 as usize >= self.blocks.len() {
                        return Err(format!("n{ni} ('{}') references bad space {space}", n.label));
                    }
                    if matches!(n.kind, NodeKind::Free { .. }) {
                        free_spaces.push(*space);
                    } else {
                        alloc_spaces.push(*space);
                    }
                }
                _ => {}
            }
            for (pi, targets) in n.outs.iter().enumerate() {
                for t in targets {
                    let Some(dst) = self.nodes.get(t.node.0 as usize) else {
                        return Err(format!("n{ni}.o{pi} targets missing node {}", t.node));
                    };
                    match dst.ins.get(t.port as usize) {
                        Some(InKind::Wire) => {}
                        Some(InKind::Imm(_)) => {
                            return Err(format!(
                                "n{ni}.o{pi} targets immediate input {}.i{}",
                                t.node, t.port
                            ))
                        }
                        None => {
                            return Err(format!(
                                "n{ni}.o{pi} targets missing port {}.i{}",
                                t.node, t.port
                            ))
                        }
                    }
                }
            }
        }
        if any_free {
            for s in alloc_spaces {
                if !free_spaces.contains(&s) {
                    return Err(format!(
                        "space {s} ('{}') is allocated from but never freed into",
                        self.blocks[s.0 as usize].name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Renders the graph in Graphviz DOT format, clustering nodes by
    /// concurrent block.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph dfg {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
        for (bi, block) in self.blocks.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{bi} {{");
            let _ = writeln!(out, "    label=\"{} (cb{bi})\";", block.name);
            for (ni, n) in self.nodes.iter().enumerate() {
                if n.block.0 as usize == bi {
                    let _ =
                        writeln!(out, "    n{ni} [label=\"{}: {}\"];", n.label, n.kind.mnemonic());
                }
            }
            let _ = writeln!(out, "  }}");
        }
        for (ni, n) in self.nodes.iter().enumerate() {
            for (pi, targets) in n.outs.iter().enumerate() {
                for t in targets {
                    let _ =
                        writeln!(out, "  n{ni} -> n{} [label=\"o{pi}->i{}\"];", t.node.0, t.port);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Mutable graph construction helper used by the lowering passes.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    blocks: Vec<BlockInfo>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a concurrent block.
    pub fn add_block(&mut self, name: &str, parent: Option<BlockId>, is_loop: bool) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockInfo { name: name.to_string(), parent, is_loop });
        id
    }

    /// Adds a node with `n_outs` (initially unwired) output ports.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        block: BlockId,
        ins: Vec<InKind>,
        n_outs: usize,
        label: impl Into<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            block,
            ins,
            outs: vec![Vec::new(); n_outs],
            label: label.into(),
        });
        id
    }

    /// Wires output `from_port` of `from` to input `to.port` of `to.node`.
    ///
    /// # Panics
    ///
    /// Panics if either port does not exist, or the input is an immediate.
    pub fn connect(&mut self, from: NodeId, from_port: u16, to: PortRef) {
        {
            let dst = &self.nodes[to.node.0 as usize];
            assert!(
                (to.port as usize) < dst.ins.len(),
                "no input port {} on {} ({})",
                to.port,
                to.node,
                dst.label
            );
            assert!(
                matches!(dst.ins[to.port as usize], InKind::Wire),
                "input {} of {} is an immediate",
                to.port,
                to.node
            );
        }
        let src = &mut self.nodes[from.0 as usize];
        assert!(
            (from_port as usize) < src.outs.len(),
            "no output port {from_port} on {from} ({})",
            src.label
        );
        src.outs[from_port as usize].push(to);
    }

    /// Converts a (still unwired) input port into an immediate. Used when a
    /// node must be created before its operand sources are known (e.g. a
    /// loop's backedge changeTags, created before the body is lowered).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn set_imm(&mut self, node: NodeId, port: u16, value: Value) {
        let n = &mut self.nodes[node.0 as usize];
        assert!((port as usize) < n.ins.len(), "no input port {port} on {node}");
        n.ins[port as usize] = InKind::Imm(value);
    }

    /// Number of nodes so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to a node under construction.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Finalizes the graph. `n_returns` is the number of program outputs
    /// (the first `n_returns` sink inputs).
    ///
    /// # Panics
    ///
    /// Panics if `source`/`sink` do not refer to Source/Sink nodes, or the
    /// sink has fewer than `n_returns` inputs.
    pub fn finish(self, source: NodeId, sink: NodeId, n_returns: usize) -> Dfg {
        assert!(matches!(self.nodes[source.0 as usize].kind, NodeKind::Source));
        assert!(matches!(self.nodes[sink.0 as usize].kind, NodeKind::Sink));
        assert!(self.nodes[sink.0 as usize].ins.len() >= n_returns);
        Dfg { nodes: self.nodes, blocks: self.blocks, source, sink, n_returns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_encoding_round_trips() {
        for (n, p) in [(0u32, 0u16), (1, 2), (65_535, 7), (1_000_000, 3)] {
            let r = PortRef { node: NodeId(n), port: p };
            assert_eq!(PortRef::decode(r.encode()), r);
        }
    }

    #[test]
    fn alloc_reserve() {
        assert_eq!(AllocKind::External.reserve(), 1);
        assert_eq!(AllocKind::Tail.reserve(), 0);
        assert_eq!(AllocKind::Call.reserve(), 0);
    }

    #[test]
    fn builder_wires_ports() {
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        let add = g.add_node(
            NodeKind::Alu(AluOp::Add),
            root,
            vec![InKind::Wire, InKind::Imm(5)],
            1,
            "add",
        );
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: add, port: 0 });
        g.connect(add, 0, PortRef { node: sink, port: 0 });
        let dfg = g.finish(src, sink, 0);
        assert_eq!(dfg.len(), 3);
        assert_eq!(dfg.node(src).outs[0], vec![PortRef { node: add, port: 0 }]);
        assert_eq!(dfg.max_wired_inputs(), 1);
        assert_eq!(dfg.block_by_name("main"), Some(ROOT_BLOCK));
        assert_eq!(dfg.block_by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "is an immediate")]
    fn connect_to_immediate_panics() {
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        let add = g.add_node(
            NodeKind::Alu(AluOp::Add),
            root,
            vec![InKind::Wire, InKind::Imm(5)],
            1,
            "add",
        );
        g.connect(src, 0, PortRef { node: add, port: 1 });
    }

    #[test]
    fn edges_enumerates_every_static_wire() {
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, root, vec![], 2, "src");
        let add =
            g.add_node(NodeKind::Alu(AluOp::Add), root, vec![InKind::Wire, InKind::Wire], 1, "add");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: add, port: 0 });
        g.connect(src, 1, PortRef { node: add, port: 1 });
        g.connect(add, 0, PortRef { node: sink, port: 0 });
        let dfg = g.finish(src, sink, 1);
        let edges: Vec<Edge> = dfg.edges().collect();
        assert_eq!(
            edges,
            vec![
                Edge { from: src, from_port: 0, to: add, to_port: 0 },
                Edge { from: src, from_port: 1, to: add, to_port: 1 },
                Edge { from: add, from_port: 0, to: sink, to_port: 0 },
            ]
        );
    }

    #[test]
    fn dot_export_mentions_blocks_and_edges() {
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: sink, port: 0 });
        let dot = g.finish(src, sink, 0).to_dot();
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("source"));
    }
}

#[cfg(test)]
mod check_tests {
    use super::*;
    use crate::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;

    fn nested_program() -> tyr_ir::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("outer", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let [j, ia, ii] = f.begin_loop("inner", [0.into(), acc, i]);
        let cj = f.lt(j, ii);
        f.begin_body(cj);
        let ia2 = f.add(ia, 1);
        let j2 = f.add(j, 1);
        let [out] = f.end_loop([j2, ia2, ii], [ia]);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, out, nn], [acc]);
        pb.finish(f, [total])
    }

    #[test]
    fn lowered_graphs_pass_check() {
        let p = nested_program();
        for d in [
            TaggingDiscipline::Tyr,
            TaggingDiscipline::UnorderedBounded,
            TaggingDiscipline::UnorderedUnbounded,
        ] {
            lower_tagged(&p, d).unwrap().check().unwrap();
        }
        lower_ordered(&p).unwrap().check().unwrap();
    }

    #[test]
    fn check_rejects_nodes_without_wired_inputs() {
        let mut g = GraphBuilder::new();
        let b = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, b, vec![], 1, "src");
        let orphan = g.add_node(
            NodeKind::Alu(tyr_ir::AluOp::Add),
            b,
            vec![InKind::Imm(1), InKind::Imm(2)],
            1,
            "orphan",
        );
        let sink = g.add_node(NodeKind::Sink, b, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: sink, port: 0 });
        let _ = orphan;
        let dfg = g.finish(src, sink, 1);
        let err = dfg.check().unwrap_err();
        assert!(err.contains("no wired inputs"), "{err}");
    }

    #[test]
    fn check_rejects_edge_into_immediate() {
        let mut g = GraphBuilder::new();
        let b = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, b, vec![], 1, "src");
        let add = g.add_node(
            NodeKind::Alu(tyr_ir::AluOp::Add),
            b,
            vec![InKind::Wire, InKind::Wire],
            1,
            "add",
        );
        let sink = g.add_node(NodeKind::Sink, b, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: add, port: 0 });
        g.connect(src, 0, PortRef { node: add, port: 1 });
        g.connect(add, 0, PortRef { node: sink, port: 0 });
        // set_imm after wiring leaves a dangling edge into an immediate.
        g.set_imm(add, 1, 5);
        let dfg = g.finish(src, sink, 1);
        let err = dfg.check().unwrap_err();
        assert!(err.contains("immediate input"), "{err}");
    }

    #[test]
    fn check_rejects_unfreed_space() {
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let child = g.add_block("loop", Some(root), true);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        let al = g.add_node(
            NodeKind::Allocate { space: child, kind: AllocKind::Call },
            root,
            vec![InKind::Wire, InKind::Wire],
            2,
            "al",
        );
        // A free for a DIFFERENT space makes the graph "barrier mode".
        let fr = g.add_node(NodeKind::Free { space: root }, root, vec![InKind::Wire], 0, "fr");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: al, port: 0 });
        g.connect(src, 0, PortRef { node: al, port: 1 });
        g.connect(al, 0, PortRef { node: sink, port: 0 });
        g.connect(al, 1, PortRef { node: fr, port: 0 });
        let dfg = g.finish(src, sink, 1);
        let err = dfg.check().unwrap_err();
        assert!(err.contains("never freed"), "{err}");
    }
}
