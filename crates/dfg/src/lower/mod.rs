//! Lowering from the structured IR to executable dataflow graphs — the
//! paper's compiler back-end (Sec. IV-C): UDIR's abstract `enter`/`exit`
//! block boundaries become concrete token-synchronization linkage.
//!
//! Three lowerings are provided:
//!
//! * [`lower_tagged`] with [`TaggingDiscipline::Tyr`] — TYR's
//!   concurrent-block linkage (Fig. 10): per-block `allocate`, argument
//!   `changeTag`s, ready-`join`s, the completion `join` + `free` barrier,
//!   and unconditional control outputs on `store`/`steer`/`changeTag`/
//!   `allocate` so the barrier covers every instruction (Sec. IV-A).
//! * [`lower_tagged`] with [`TaggingDiscipline::UnorderedBounded`] —
//!   structurally the same graph; the engine's tag policy then draws all
//!   allocations FCFS from one bounded global pool, reproducing the
//!   deadlock of Fig. 11.
//! * [`lower_tagged`] with [`TaggingDiscipline::UnorderedUnbounded`] — the
//!   naïve unordered dataflow elaboration (Fig. 7a): plain tag-generation
//!   (`T`) nodes, no ready joins, no barriers, no frees.
//! * [`lower_ordered`] — untagged ordered dataflow with controlled merges
//!   and bounded FIFO edges (RipTide-style; Sec. II-C).

mod ordered;
mod tagged;
pub(crate) mod util;

use std::fmt;

pub use ordered::lower_ordered;
pub use tagged::lower_tagged;

use tyr_ir::validate::ValidateError;

/// Which token-synchronization elaboration to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaggingDiscipline {
    /// Local tag spaces with forward-progress guarantees (the paper's
    /// contribution).
    Tyr,
    /// Global tag space, bounded pool, no forward-progress gating; deadlocks
    /// under tag pressure (Fig. 11). Graph is identical to `Tyr` — the
    /// engine's tag policy selects the pool behavior.
    UnorderedBounded,
    /// Global tag space with unlimited tags (TTDA/Monsoon-style baseline).
    UnorderedUnbounded,
}

impl TaggingDiscipline {
    /// Whether this elaboration builds free barriers (joins, frees, and
    /// control outputs).
    pub fn has_barriers(self) -> bool {
        !matches!(self, TaggingDiscipline::UnorderedUnbounded)
    }
}

/// Lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The input program failed validation.
    Validate(ValidateError),
    /// A loop's condition folded to a constant (either an infinite loop or a
    /// dead loop); not supported by the lowering.
    ConstLoopCond {
        /// The loop's label.
        label: String,
    },
    /// The entry function returns no values, so program completion would be
    /// unobservable. Return something (e.g. a checksum).
    EntryReturnsNothing,
    /// Constant folding hit an arithmetic fault (e.g. a literal division by
    /// zero).
    ConstFold(tyr_ir::AluError),
    /// The ordered lowering requires a call-free program and inlining was
    /// disabled.
    OrderedNeedsInline,
    /// The lowering produced a structurally invalid graph ([`Dfg::check`]
    /// failed) — a compiler bug, reported as an error rather than a
    /// debug-only assertion so release builds cannot hand a malformed graph
    /// to an engine. `tyr-verify`'s structure pass reports the same
    /// violations with per-node diagnostics.
    ///
    /// [`Dfg::check`]: crate::Dfg::check
    Malformed {
        /// The first violation found.
        detail: String,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Validate(e) => write!(f, "validation failed: {e}"),
            LowerError::ConstLoopCond { label } => {
                write!(f, "loop '{label}' has a constant condition")
            }
            LowerError::EntryReturnsNothing => {
                write!(f, "entry function must return at least one value")
            }
            LowerError::ConstFold(e) => write!(f, "constant folding fault: {e}"),
            LowerError::OrderedNeedsInline => {
                write!(f, "ordered lowering requires a call-free (inlined) program")
            }
            LowerError::Malformed { detail } => {
                write!(f, "lowering produced a malformed graph: {detail}")
            }
        }
    }
}

impl std::error::Error for LowerError {}

impl From<ValidateError> for LowerError {
    fn from(e: ValidateError) -> Self {
        LowerError::Validate(e)
    }
}
