//! Tagged-dataflow lowering: TYR's concurrent-block linkage (Fig. 10) and
//! the naïve unordered elaborations it is compared against (Fig. 7).
//!
//! Every loop and function body becomes a concurrent block with its own
//! local tag space. Loops get two transfer points (entry + backedge);
//! functions get one per call site, with dynamically-routed returns
//! (`changeTagDyn`), exactly as described in Sec. IV.
//!
//! In barrier-building disciplines ([`TaggingDiscipline::has_barriers`]),
//! the lowering also constructs, per block:
//!
//! * a *ready* `join` feeding each `allocate` (forward progress, Sec. IV-A);
//! * unconditional control outputs on `store`/`steer`/`changeTag`/
//!   `allocate`;
//! * per-iteration `join`s on the taken/not-taken sides of the loop test,
//!   merged into one unconditional completion token (the non-trivial
//!   free-barrier construction the paper calls out for conditional code);
//! * the block's completion `join` feeding `free`.

use std::collections::HashMap;

use tyr_ir::validate::validate;
use tyr_ir::{AluOp, FuncId, LoopStmt, Operand, Program, Region, Stmt, Value, Var};

use crate::graph::{AllocKind, BlockId, Dfg, GraphBuilder, InKind, NodeId, NodeKind, PortRef};
use crate::lower::util::{free_vars, operand_vars};
use crate::lower::{LowerError, TaggingDiscipline};

/// Lowers a structured program into a tagged dataflow graph.
///
/// # Errors
///
/// Returns a [`LowerError`] if the program fails validation, a loop
/// condition folds to a constant, or the entry function returns nothing.
pub fn lower_tagged(program: &Program, discipline: TaggingDiscipline) -> Result<Dfg, LowerError> {
    validate(program)?;
    if program.entry_func().returns.is_empty() {
        return Err(LowerError::EntryReturnsNothing);
    }
    let mut lw = Lowering {
        program,
        g: GraphBuilder::new(),
        barriers: discipline.has_barriers(),
        pending: Vec::new(),
        funcs: vec![None; program.funcs.len()],
        source: None,
        sink: None,
    };
    // Lower callees before callers (post-order over the call DAG), so call
    // sites can wire into the recorded consumer lists.
    let order = call_post_order(program);
    for fid in order {
        lw.lower_func(fid)?;
    }
    let source = lw.source.expect("entry lowered");
    let sink = lw.sink.expect("entry lowered");
    let dfg = lw.g.finish(source, sink, program.entry_func().returns.len());
    dfg.check().map_err(|detail| LowerError::Malformed { detail })?;
    Ok(dfg)
}

/// Post-order of the call DAG ending at the entry function; unreachable
/// functions are skipped.
fn call_post_order(program: &Program) -> Vec<FuncId> {
    fn callees(r: &Region, out: &mut Vec<FuncId>) {
        for s in &r.stmts {
            match s {
                Stmt::Call { func, .. } => out.push(*func),
                Stmt::Loop(l) => {
                    callees(&l.pre, out);
                    callees(&l.body, out);
                }
                Stmt::If(i) => {
                    callees(&i.then_region, out);
                    callees(&i.else_region, out);
                }
                _ => {}
            }
        }
    }
    fn dfs(program: &Program, f: FuncId, seen: &mut Vec<bool>, out: &mut Vec<FuncId>) {
        if seen[f.0 as usize] {
            return;
        }
        seen[f.0 as usize] = true;
        let mut cs = Vec::new();
        callees(&program.func(f).body, &mut cs);
        for c in cs {
            dfs(program, c, seen, out);
        }
        out.push(f);
    }
    let mut seen = vec![false; program.funcs.len()];
    let mut out = Vec::new();
    dfs(program, program.entry, &mut seen, &mut out);
    out
}

/// Where a value comes from during lowering.
#[derive(Debug, Clone)]
enum Src {
    /// An immediate (becomes an instruction immediate, not a token).
    Imm(Value),
    /// One or more producer output ports (several when a loop-carried value
    /// is fed by both the entry and backedge transfer points).
    Ports(Vec<(NodeId, u16)>),
    /// A consumer list to be wired later by call sites (function params,
    /// parent-tag and return-address tokens).
    Pending(usize),
}

fn ports(n: NodeId, p: u16) -> Src {
    Src::Ports(vec![(n, p)])
}

type Env = HashMap<Var, Src>;

/// Per-region lowering context.
#[derive(Clone)]
struct Ctx {
    /// The concurrent block nodes created here belong to.
    block: BlockId,
    /// A source producing exactly one token per context, used to trigger
    /// instructions with no data-token inputs (constant loads etc.).
    trigger: Src,
}

/// Record of a lowered function, consumed by its call sites.
#[derive(Debug, Clone)]
struct LoweredFunc {
    block: BlockId,
    /// Pending consumer lists for each parameter.
    params: Vec<usize>,
    /// Pending consumer list for the parent-tag token.
    ptag: usize,
    /// Pending consumer lists for each return-address token.
    retaddrs: Vec<usize>,
    /// Number of return tokens the callee sends (≥ 1; a synthetic
    /// completion token is added to functions that return nothing).
    n_rets: usize,
    /// Number of *declared* IR returns.
    n_decl_rets: usize,
}

struct Lowering<'p> {
    program: &'p Program,
    g: GraphBuilder,
    barriers: bool,
    pending: Vec<Vec<PortRef>>,
    funcs: Vec<Option<LoweredFunc>>,
    source: Option<NodeId>,
    sink: Option<NodeId>,
}

impl<'p> Lowering<'p> {
    fn new_pending(&mut self) -> usize {
        self.pending.push(Vec::new());
        self.pending.len() - 1
    }

    fn attach(&mut self, s: &Src, to: PortRef) {
        match s {
            Src::Imm(_) => {}
            Src::Ports(ps) => {
                for &(n, p) in ps {
                    self.g.connect(n, p, to);
                }
            }
            Src::Pending(i) => self.pending[*i].push(to),
        }
    }

    /// Connects a producer port to every recorded consumer of a pending list.
    fn connect_pending(&mut self, from: NodeId, port: u16, pending: usize) {
        let targets = self.pending[pending].clone();
        for t in targets {
            self.g.connect(from, port, t);
        }
    }

    fn emit(
        &mut self,
        kind: NodeKind,
        block: BlockId,
        inputs: &[Src],
        n_outs: usize,
        label: impl Into<String>,
    ) -> NodeId {
        let ins: Vec<InKind> = inputs
            .iter()
            .map(|s| match s {
                Src::Imm(v) => InKind::Imm(*v),
                _ => InKind::Wire,
            })
            .collect();
        let id = self.g.add_node(kind, block, ins, n_outs, label);
        for (i, s) in inputs.iter().enumerate() {
            self.attach(s, PortRef { node: id, port: i as u16 });
        }
        id
    }

    fn resolve(&self, env: &Env, o: Operand) -> Src {
        match o {
            Operand::Const(c) => Src::Imm(c),
            Operand::Var(v) => {
                env.get(&v).unwrap_or_else(|| panic!("unbound {v} (validated program?)")).clone()
            }
        }
    }

    /// Turns an immediate into a token via a `Const` node triggered once per
    /// context; passes port sources through unchanged.
    fn materialize(&mut self, s: Src, ctx: &Ctx, label: &str) -> Src {
        match s {
            Src::Imm(v) => {
                let c = self.emit(
                    NodeKind::Const(v),
                    ctx.block,
                    std::slice::from_ref(&ctx.trigger),
                    1,
                    label,
                );
                ports(c, 0)
            }
            other => other,
        }
    }

    fn ct_outs(&self) -> usize {
        if self.barriers {
            2
        } else {
            1
        }
    }

    fn steer_outs(&self) -> usize {
        if self.barriers {
            3
        } else {
            2
        }
    }

    fn lower_func(&mut self, fid: FuncId) -> Result<(), LowerError> {
        let func = self.program.func(fid);
        let is_root = fid == self.program.entry;
        let block = self.g.add_block(&func.name, None, false);
        let mut env: Env = HashMap::new();
        let mut ctl: Vec<(NodeId, u16)> = Vec::new();

        let (ctx, params_p, ptag_p, retaddrs_p);
        let n_rets = func.returns.len().max(1);
        if is_root {
            let src =
                self.g.add_node(NodeKind::Source, block, vec![], func.params.len() + 1, "source");
            self.source = Some(src);
            for (k, &p) in func.params.iter().enumerate() {
                env.insert(p, ports(src, k as u16));
            }
            ctx = Ctx { block, trigger: ports(src, func.params.len() as u16) };
            params_p = Vec::new();
            ptag_p = usize::MAX;
            retaddrs_p = Vec::new();
        } else {
            params_p = func.params.iter().map(|_| self.new_pending()).collect::<Vec<_>>();
            for (k, &p) in func.params.iter().enumerate() {
                env.insert(p, Src::Pending(params_p[k]));
            }
            ptag_p = self.new_pending();
            retaddrs_p = (0..n_rets).map(|_| self.new_pending()).collect::<Vec<_>>();
            ctx = Ctx { block, trigger: Src::Pending(ptag_p) };
        }

        self.lower_region(&func.body, &mut env, &ctx, &mut ctl)?;

        if is_root {
            let ret_srcs: Vec<Src> = func
                .returns
                .iter()
                .map(|&r| {
                    let s = self.resolve(&env, r);
                    self.materialize(s, &ctx, "ret.const")
                })
                .collect();
            let has_bar = self.barriers && !ctl.is_empty();
            let n_sink = ret_srcs.len() + usize::from(has_bar);
            let sink =
                self.g.add_node(NodeKind::Sink, block, vec![InKind::Wire; n_sink], 0, "sink");
            self.sink = Some(sink);
            for (j, s) in ret_srcs.iter().enumerate() {
                self.attach(s, PortRef { node: sink, port: j as u16 });
            }
            if has_bar {
                // The barrier must cover the data path as well as the control
                // path: control-completion signals fire when steers commit,
                // which can be cycles before the ALU chain feeding the sink
                // has drained. Joining the return sources too orders
                // `root.free` after the block's last live token.
                let mut sig: Vec<Src> = ctl.iter().map(|&(n, p)| ports(n, p)).collect();
                sig.extend(ret_srcs.iter().cloned());
                let bar = self.emit(NodeKind::Join, block, &sig, 1, "root.barrier");
                self.g.connect(bar, 0, PortRef { node: sink, port: ret_srcs.len() as u16 });
                self.emit(NodeKind::Free { space: block }, block, &[ports(bar, 0)], 0, "root.free");
            }
        } else {
            // Return transfer point: one dynamically-routed changeTag per
            // return value (plus a synthetic completion token for void
            // functions).
            let rets: Vec<Operand> = if func.returns.is_empty() {
                vec![Operand::Const(0)]
            } else {
                func.returns.clone()
            };
            let dyn_outs = if self.barriers { 2 } else { 1 };
            for (j, &r) in rets.iter().enumerate() {
                let s = self.resolve(&env, r);
                let ct = self.emit(
                    NodeKind::ChangeTagDyn,
                    block,
                    &[Src::Pending(ptag_p), Src::Pending(retaddrs_p[j]), s],
                    dyn_outs,
                    format!("{}::ret{j}", func.name),
                );
                if self.barriers {
                    ctl.push((ct, 1));
                }
            }
            if self.barriers {
                let bar = self.join_over(&ctl, block, format!("{}::barrier", func.name));
                self.emit(
                    NodeKind::Free { space: block },
                    block,
                    &[ports(bar, 0)],
                    0,
                    format!("{}::free", func.name),
                );
            }
        }

        self.funcs[fid.0 as usize] = Some(LoweredFunc {
            block,
            params: params_p,
            ptag: ptag_p,
            retaddrs: retaddrs_p,
            n_rets,
            n_decl_rets: func.returns.len(),
        });
        Ok(())
    }

    /// Builds a `join` over a list of control ports.
    fn join_over(
        &mut self,
        ctl: &[(NodeId, u16)],
        block: BlockId,
        label: impl Into<String>,
    ) -> NodeId {
        assert!(!ctl.is_empty(), "barrier join needs at least one input");
        let srcs: Vec<Src> = ctl.iter().map(|&(n, p)| ports(n, p)).collect();
        self.emit(NodeKind::Join, block, &srcs, 1, label)
    }

    fn lower_region(
        &mut self,
        region: &Region,
        env: &mut Env,
        ctx: &Ctx,
        ctl: &mut Vec<(NodeId, u16)>,
    ) -> Result<(), LowerError> {
        for stmt in &region.stmts {
            self.lower_stmt(stmt, env, ctx, ctl)?;
        }
        Ok(())
    }

    fn lower_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut Env,
        ctx: &Ctx,
        ctl: &mut Vec<(NodeId, u16)>,
    ) -> Result<(), LowerError> {
        match stmt {
            Stmt::Op { dst, op, lhs, rhs } => {
                let a = self.resolve(env, *lhs);
                let b = self.resolve(env, *rhs);
                if let (Src::Imm(x), Src::Imm(y)) = (&a, &b) {
                    // Constant fold: immediates never become tokens.
                    let v = op.eval(*x, *y).map_err(LowerError::ConstFold)?;
                    env.insert(*dst, Src::Imm(v));
                } else {
                    let n = self.emit(
                        NodeKind::Alu(*op),
                        ctx.block,
                        &[a, b],
                        1,
                        format!("{dst}={}", op.mnemonic()),
                    );
                    env.insert(*dst, ports(n, 0));
                }
            }
            Stmt::Load { dst, addr } => {
                let a = self.resolve(env, *addr);
                let inputs: Vec<Src> =
                    if matches!(a, Src::Imm(_)) { vec![a, ctx.trigger.clone()] } else { vec![a] };
                let n = self.emit(NodeKind::Load, ctx.block, &inputs, 1, format!("{dst}=load"));
                env.insert(*dst, ports(n, 0));
            }
            Stmt::Store { addr, value } | Stmt::StoreAdd { addr, value } => {
                let a = self.resolve(env, *addr);
                let v = self.resolve(env, *value);
                let mut inputs = vec![a, v];
                if inputs.iter().all(|s| matches!(s, Src::Imm(_))) {
                    inputs.push(ctx.trigger.clone());
                }
                let kind = if matches!(stmt, Stmt::Store { .. }) {
                    NodeKind::Store
                } else {
                    NodeKind::StoreAdd
                };
                let n_outs = usize::from(self.barriers);
                let n = self.emit(kind, ctx.block, &inputs, n_outs, "store");
                if self.barriers {
                    ctl.push((n, 0));
                }
            }
            Stmt::Select { dst, cond, on_true, on_false } => {
                let c = self.resolve(env, *cond);
                let t = self.resolve(env, *on_true);
                let f = self.resolve(env, *on_false);
                if let Src::Imm(cv) = c {
                    env.insert(*dst, if cv != 0 { t } else { f });
                } else {
                    let n = self.emit(
                        NodeKind::Select,
                        ctx.block,
                        &[c, t, f],
                        1,
                        format!("{dst}=select"),
                    );
                    env.insert(*dst, ports(n, 0));
                }
            }
            Stmt::If(i) => self.lower_if(i, env, ctx, ctl)?,
            Stmt::Loop(l) => self.lower_loop(l, env, ctx, ctl)?,
            Stmt::Call { func, args, rets } => self.lower_call(*func, args, rets, env, ctx, ctl)?,
        }
        Ok(())
    }

    /// Steer-based conditional lowering. A self-steer of the condition
    /// anchors each side so per-side completion joins are never empty and
    /// branch-local constants have a trigger.
    fn lower_if(
        &mut self,
        i: &tyr_ir::IfStmt,
        env: &mut Env,
        ctx: &Ctx,
        ctl: &mut Vec<(NodeId, u16)>,
    ) -> Result<(), LowerError> {
        let c = self.resolve(env, i.cond);
        if let Src::Imm(cv) = c {
            // Constant condition: splice the taken side in directly.
            let taken = if cv != 0 { &i.then_region } else { &i.else_region };
            let mut benv = env.clone();
            self.lower_region(taken, &mut benv, ctx, ctl)?;
            for &(d, t, e) in &i.merges {
                let src = self.resolve(&benv, if cv != 0 { t } else { e });
                env.insert(d, src);
            }
            return Ok(());
        }

        let anchor = self.emit(
            NodeKind::Steer,
            ctx.block,
            &[c.clone(), c.clone()],
            self.steer_outs(),
            "if.anchor",
        );
        if self.barriers {
            ctl.push((anchor, 2));
        }

        let mut steers: HashMap<Var, NodeId> = HashMap::new();
        let mut steer_for = |lw: &mut Self, v: Var, env: &Env| -> NodeId {
            if let Some(&s) = steers.get(&v) {
                return s;
            }
            let src = env.get(&v).expect("validated scope").clone();
            let s = lw.emit(
                NodeKind::Steer,
                ctx.block,
                &[c.clone(), src],
                lw.steer_outs(),
                format!("steer.{v}"),
            );
            steers.insert(v, s);
            s
        };

        let build_env = |lw: &mut Self,
                         steers: &mut dyn FnMut(&mut Self, Var, &Env) -> NodeId,
                         region: &Region,
                         merge_ops: Vec<Operand>,
                         side: u16,
                         env: &Env|
         -> Env {
            let mut uses: Vec<Var> =
                free_vars(region).union(&operand_vars(merge_ops.iter())).copied().collect();
            uses.sort();
            let mut benv = Env::new();
            for v in uses {
                match env.get(&v) {
                    Some(Src::Imm(x)) => {
                        benv.insert(v, Src::Imm(*x));
                    }
                    Some(_) => {
                        let s = steers(lw, v, env);
                        benv.insert(v, ports(s, side));
                    }
                    None => {} // defined inside the region itself
                }
            }
            benv
        };

        // Then side (steer output 0).
        let then_ops: Vec<Operand> = i.merges.iter().map(|&(_, t, _)| t).collect();
        let mut then_env = build_env(self, &mut steer_for, &i.then_region, then_ops, 0, env);
        let then_ctx = Ctx { block: ctx.block, trigger: ports(anchor, 0) };
        let mut then_ctl = vec![(anchor, 0)];
        self.lower_region(&i.then_region, &mut then_env, &then_ctx, &mut then_ctl)?;

        // Else side (steer output 1).
        let else_ops: Vec<Operand> = i.merges.iter().map(|&(_, _, e)| e).collect();
        let mut else_env = build_env(self, &mut steer_for, &i.else_region, else_ops, 1, env);
        let else_ctx = Ctx { block: ctx.block, trigger: ports(anchor, 1) };
        let mut else_ctl = vec![(anchor, 1)];
        self.lower_region(&i.else_region, &mut else_env, &else_ctx, &mut else_ctl)?;

        for &(d, t, e) in &i.merges {
            let ts = self.resolve(&then_env, t);
            let ts = self.materialize(ts, &then_ctx, "merge.const");
            let es = self.resolve(&else_env, e);
            let es = self.materialize(es, &else_ctx, "merge.const");
            let m = self.emit(NodeKind::Merge, ctx.block, &[ts, es], 1, format!("{d}=merge"));
            env.insert(d, ports(m, 0));
        }

        if self.barriers {
            let tj = self.join_over(&then_ctl, ctx.block, "if.then.done");
            let ej = self.join_over(&else_ctl, ctx.block, "if.else.done");
            let done =
                self.emit(NodeKind::Merge, ctx.block, &[ports(tj, 0), ports(ej, 0)], 1, "if.done");
            ctl.push((done, 0));
        }
        Ok(())
    }

    /// Loop lowering: two transfer points (entry + backedge) into a fresh
    /// concurrent block, exit changeTags restoring the parent tag, and the
    /// per-iteration barrier machinery.
    fn lower_loop(
        &mut self,
        l: &LoopStmt,
        env: &mut Env,
        ctx: &Ctx,
        ctl: &mut Vec<(NodeId, u16)>,
    ) -> Result<(), LowerError> {
        let child = self.g.add_block(&l.label, Some(ctx.block), true);
        let ct_outs = self.ct_outs();

        // --- Entry transfer point (nodes in the parent block) ---
        let inits: Vec<Src> = l.carried.iter().map(|&(_, init)| self.resolve(env, init)).collect();
        let wired: Vec<Src> = inits.iter().filter(|s| !matches!(s, Src::Imm(_))).cloned().collect();
        let request = wired.first().cloned().unwrap_or_else(|| ctx.trigger.clone());

        let al = if self.barriers {
            let ready_srcs: Vec<Src> =
                if wired.is_empty() { vec![ctx.trigger.clone()] } else { wired.clone() };
            let rj = self.emit(
                NodeKind::Join,
                ctx.block,
                &ready_srcs,
                1,
                format!("{}::entry.ready", l.label),
            );
            let al = self.emit(
                NodeKind::Allocate { space: child, kind: AllocKind::External },
                ctx.block,
                &[request, ports(rj, 0)],
                2,
                format!("{}::alloc.entry", l.label),
            );
            ctl.push((al, 1));
            al
        } else {
            self.emit(
                NodeKind::NewTag,
                ctx.block,
                &[request],
                1,
                format!("{}::newtag.entry", l.label),
            )
        };
        let newtag = ports(al, 0);
        let xt = self.emit(
            NodeKind::ExtractTag,
            ctx.block,
            std::slice::from_ref(&newtag),
            1,
            format!("{}::xt", l.label),
        );

        let mut entry_ct = Vec::with_capacity(inits.len());
        for ((v, _), init) in l.carried.iter().zip(&inits) {
            let n = self.emit(
                NodeKind::ChangeTag,
                ctx.block,
                &[newtag.clone(), init.clone()],
                ct_outs,
                format!("{}::ct.{v}", l.label),
            );
            if self.barriers {
                ctl.push((n, 1));
            }
            entry_ct.push(n);
        }
        let ct_ptag = self.emit(
            NodeKind::ChangeTag,
            ctx.block,
            &[newtag.clone(), ports(xt, 0)],
            ct_outs,
            format!("{}::ct.ptag", l.label),
        );
        if self.barriers {
            ctl.push((ct_ptag, 1));
        }

        // --- Backedge transfer point (created up-front, wired later) ---
        let al_tail = if self.barriers {
            self.g.add_node(
                NodeKind::Allocate { space: child, kind: AllocKind::Tail },
                child,
                vec![InKind::Wire, InKind::Wire],
                2,
                format!("{}::alloc.tail", l.label),
            )
        } else {
            self.g.add_node(
                NodeKind::NewTag,
                child,
                vec![InKind::Wire],
                1,
                format!("{}::newtag.tail", l.label),
            )
        };
        let backtag = ports(al_tail, 0);
        let mut back_ct = Vec::with_capacity(l.carried.len());
        for (v, _) in &l.carried {
            let n = self.g.add_node(
                NodeKind::ChangeTag,
                child,
                vec![InKind::Wire, InKind::Wire],
                ct_outs,
                format!("{}::ct.back.{v}", l.label),
            );
            self.attach(&backtag, PortRef { node: n, port: 0 });
            back_ct.push(n);
        }
        let back_ct_ptag = self.g.add_node(
            NodeKind::ChangeTag,
            child,
            vec![InKind::Wire, InKind::Wire],
            ct_outs,
            format!("{}::ct.back.ptag", l.label),
        );
        self.attach(&backtag, PortRef { node: back_ct_ptag, port: 0 });

        // --- Child environment: carried values come from both transfer points ---
        let mut cenv: Env = HashMap::new();
        for (k, (v, _)) in l.carried.iter().enumerate() {
            cenv.insert(*v, Src::Ports(vec![(entry_ct[k], 0), (back_ct[k], 0)]));
        }
        let ptag_src = Src::Ports(vec![(ct_ptag, 0), (back_ct_ptag, 0)]);

        let mut child_ctl: Vec<(NodeId, u16)> = Vec::new();

        // --- Pre region (pure; runs every iteration including the final test) ---
        let pre_ctx = Ctx { block: child, trigger: ptag_src.clone() };
        self.lower_region(&l.pre, &mut cenv, &pre_ctx, &mut child_ctl)?;
        let cond = self.resolve(&cenv, l.cond);
        if matches!(cond, Src::Imm(_)) {
            return Err(LowerError::ConstLoopCond { label: l.label.clone() });
        }

        // --- Steers: route carried/pre values into the body (taken) or to
        //     the exits (not taken) ---
        let steer_outs = self.steer_outs();
        let mut steer_map: HashMap<Var, NodeId> = HashMap::new();
        let steer_ptag = self.emit(
            NodeKind::Steer,
            child,
            &[cond.clone(), ptag_src.clone()],
            steer_outs,
            format!("{}::steer.ptag", l.label),
        );
        if self.barriers {
            child_ctl.push((steer_ptag, 2));
        }

        let mut get_steer =
            |lw: &mut Self, v: Var, cenv: &Env, child_ctl: &mut Vec<(NodeId, u16)>| -> NodeId {
                if let Some(&s) = steer_map.get(&v) {
                    return s;
                }
                let src = cenv.get(&v).expect("validated scope").clone();
                let s = lw.emit(
                    NodeKind::Steer,
                    child,
                    &[cond.clone(), src],
                    steer_outs,
                    format!("{}::steer.{v}", l.label),
                );
                if lw.barriers {
                    child_ctl.push((s, 2));
                }
                steer_map.insert(v, s);
                s
            };

        // --- Body (conditional on the test) ---
        let mut body_uses: Vec<Var> =
            free_vars(&l.body).union(&operand_vars(l.next.iter())).copied().collect();
        body_uses.sort();
        let mut benv: Env = HashMap::new();
        for v in body_uses {
            match cenv.get(&v) {
                Some(Src::Imm(x)) => {
                    benv.insert(v, Src::Imm(*x));
                }
                Some(_) => {
                    let s = get_steer(self, v, &cenv, &mut child_ctl);
                    benv.insert(v, ports(s, 0));
                }
                None => {}
            }
        }
        let body_ctx = Ctx { block: child, trigger: ports(steer_ptag, 0) };
        let mut true_ctl: Vec<(NodeId, u16)> = Vec::new();
        self.lower_region(&l.body, &mut benv, &body_ctx, &mut true_ctl)?;

        // --- Wire the backedge transfer point ---
        let mut wired_next: Vec<Src> = Vec::new();
        for (k, &nxt) in l.next.iter().enumerate() {
            let s = self.resolve(&benv, nxt);
            match &s {
                Src::Imm(v) => self.g.set_imm(back_ct[k], 1, *v),
                _ => {
                    self.attach(&s, PortRef { node: back_ct[k], port: 1 });
                    wired_next.push(s);
                }
            }
        }
        let ptag_true = ports(steer_ptag, 0);
        self.attach(&ptag_true, PortRef { node: back_ct_ptag, port: 1 });
        let tail_request = wired_next.first().cloned().unwrap_or_else(|| ptag_true.clone());
        self.attach(&tail_request, PortRef { node: al_tail, port: 0 });
        if self.barriers {
            let mut ready = wired_next.clone();
            ready.push(ptag_true.clone());
            let rj =
                self.emit(NodeKind::Join, child, &ready, 1, format!("{}::backedge.ready", l.label));
            self.g.connect(rj, 0, PortRef { node: al_tail, port: 1 });
            true_ctl.push((al_tail, 1));
            for &n in back_ct.iter().chain([&back_ct_ptag]) {
                true_ctl.push((n, 1));
            }
        }

        // --- Exit transfer point (not-taken side) ---
        let ptag_false = ports(steer_ptag, 1);
        let mut false_ctl: Vec<(NodeId, u16)> = Vec::new();
        let lower_exit = |lw: &mut Self,
                          src: Src,
                          dst: Option<Var>,
                          env: &mut Env,
                          ctl: &mut Vec<(NodeId, u16)>,
                          false_ctl: &mut Vec<(NodeId, u16)>,
                          j: usize| {
            let ct = lw.emit(
                NodeKind::ChangeTag,
                child,
                &[ptag_false.clone(), src],
                ct_outs,
                format!("{}::ct.exit{j}", l.label),
            );
            if lw.barriers {
                false_ctl.push((ct, 1));
                // The parent's barrier must wait for the loop to finish.
                ctl.push((ct, 0));
            }
            if let Some(d) = dst {
                env.insert(d, ports(ct, 0));
            }
        };
        if l.exits.is_empty() {
            lower_exit(self, Src::Imm(0), None, env, ctl, &mut false_ctl, 0);
        } else {
            for (j, &(d, src_op)) in l.exits.iter().enumerate() {
                let s = match src_op {
                    Operand::Const(c) => Src::Imm(c),
                    Operand::Var(v) => match cenv.get(&v) {
                        Some(Src::Imm(x)) => Src::Imm(*x),
                        Some(_) => {
                            let st = get_steer(self, v, &cenv, &mut child_ctl);
                            ports(st, 1)
                        }
                        None => panic!("exit var {v} not in loop scope (validated program?)"),
                    },
                };
                lower_exit(self, s, Some(d), env, ctl, &mut false_ctl, j);
            }
        }

        // --- Per-iteration completion and the block barrier ---
        if self.barriers {
            let tj = self.join_over(&true_ctl, child, format!("{}::iter.taken", l.label));
            let fj = self.join_over(&false_ctl, child, format!("{}::iter.exit", l.label));
            let done = self.emit(
                NodeKind::Merge,
                child,
                &[ports(tj, 0), ports(fj, 0)],
                1,
                format!("{}::iter.done", l.label),
            );
            child_ctl.push((done, 0));
            let bar = self.join_over(&child_ctl, child, format!("{}::barrier", l.label));
            self.emit(
                NodeKind::Free { space: child },
                child,
                &[ports(bar, 0)],
                0,
                format!("{}::free", l.label),
            );
        }
        Ok(())
    }

    /// Call-site transfer point: allocate in the callee's space, changeTag
    /// the arguments, parent tag, and return addresses in; land the
    /// dynamically-routed return tokens.
    fn lower_call(
        &mut self,
        func: FuncId,
        args: &[Operand],
        rets: &[Var],
        env: &mut Env,
        ctx: &Ctx,
        ctl: &mut Vec<(NodeId, u16)>,
    ) -> Result<(), LowerError> {
        let lf = self.funcs[func.0 as usize].clone().expect("callee lowered before caller");
        let name = &self.program.func(func).name;
        let ct_outs = self.ct_outs();

        let argv: Vec<Src> = args.iter().map(|&a| self.resolve(env, a)).collect();
        let wired: Vec<Src> = argv.iter().filter(|s| !matches!(s, Src::Imm(_))).cloned().collect();
        let request = wired.first().cloned().unwrap_or_else(|| ctx.trigger.clone());

        let al = if self.barriers {
            let ready_srcs: Vec<Src> =
                if wired.is_empty() { vec![ctx.trigger.clone()] } else { wired.clone() };
            let rj =
                self.emit(NodeKind::Join, ctx.block, &ready_srcs, 1, format!("call.{name}.ready"));
            let al = self.emit(
                NodeKind::Allocate { space: lf.block, kind: AllocKind::Call },
                ctx.block,
                &[request, ports(rj, 0)],
                2,
                format!("call.{name}.alloc"),
            );
            ctl.push((al, 1));
            al
        } else {
            self.emit(NodeKind::NewTag, ctx.block, &[request], 1, format!("call.{name}.newtag"))
        };
        let newtag = ports(al, 0);
        let xt = self.emit(
            NodeKind::ExtractTag,
            ctx.block,
            std::slice::from_ref(&newtag),
            1,
            format!("call.{name}.xt"),
        );

        // Arguments.
        for (k, a) in argv.iter().enumerate() {
            let ct = self.emit(
                NodeKind::ChangeTag,
                ctx.block,
                &[newtag.clone(), a.clone()],
                ct_outs,
                format!("call.{name}.arg{k}"),
            );
            if self.barriers {
                ctl.push((ct, 1));
            }
            self.connect_pending(ct, 0, lf.params[k]);
        }
        // Parent tag.
        let ct_ptag = self.emit(
            NodeKind::ChangeTag,
            ctx.block,
            &[newtag.clone(), ports(xt, 0)],
            ct_outs,
            format!("call.{name}.ptag"),
        );
        if self.barriers {
            ctl.push((ct_ptag, 1));
        }
        self.connect_pending(ct_ptag, 0, lf.ptag);

        // Return landings + return addresses.
        for j in 0..lf.n_rets {
            let land = self.g.add_node(
                NodeKind::Alu(AluOp::Mov),
                ctx.block,
                vec![InKind::Wire],
                1,
                format!("call.{name}.ret{j}"),
            );
            let target = PortRef { node: land, port: 0 };
            let ct = self.emit(
                NodeKind::ChangeTag,
                ctx.block,
                &[newtag.clone(), Src::Imm(target.encode())],
                ct_outs,
                format!("call.{name}.retaddr{j}"),
            );
            if self.barriers {
                ctl.push((ct, 1));
                // Parent barrier waits for the callee to return.
                ctl.push((land, 0));
            }
            self.connect_pending(ct, 0, lf.retaddrs[j]);
            if j < lf.n_decl_rets {
                if let Some(&d) = rets.get(j) {
                    env.insert(d, ports(land, 0));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind as NK;
    use tyr_ir::build::ProgramBuilder;

    fn count_loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, nn], [acc]);
        pb.finish(f, [total])
    }

    fn kind_count(dfg: &Dfg, pred: impl Fn(&NK) -> bool) -> usize {
        dfg.nodes.iter().filter(|n| pred(&n.kind)).count()
    }

    #[test]
    fn tyr_lowering_builds_linkage() {
        let p = count_loop_program();
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        // Two blocks: main + the loop.
        assert_eq!(dfg.blocks.len(), 2);
        // Two allocates: entry (external) and backedge (tail).
        assert_eq!(
            kind_count(&dfg, |k| matches!(k, NK::Allocate { kind: AllocKind::External, .. })),
            1
        );
        assert_eq!(
            kind_count(&dfg, |k| matches!(k, NK::Allocate { kind: AllocKind::Tail, .. })),
            1
        );
        // One free per block... the root block may skip its barrier if empty.
        assert!(kind_count(&dfg, |k| matches!(k, NK::Free { .. })) >= 1);
        // No unbounded tag generators in TYR mode.
        assert_eq!(kind_count(&dfg, |k| matches!(k, NK::NewTag)), 0);
        // ExtractTag for the parent tag.
        assert!(kind_count(&dfg, |k| matches!(k, NK::ExtractTag)) >= 1);
    }

    #[test]
    fn unbounded_lowering_has_no_barriers() {
        let p = count_loop_program();
        let dfg = lower_tagged(&p, TaggingDiscipline::UnorderedUnbounded).unwrap();
        assert_eq!(kind_count(&dfg, |k| matches!(k, NK::Allocate { .. })), 0);
        assert_eq!(kind_count(&dfg, |k| matches!(k, NK::Free { .. })), 0);
        assert_eq!(kind_count(&dfg, |k| matches!(k, NK::Join)), 0);
        assert_eq!(kind_count(&dfg, |k| matches!(k, NK::NewTag)), 2); // entry + backedge
    }

    #[test]
    fn bounded_graph_matches_tyr_graph_shape() {
        let p = count_loop_program();
        let a = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        let b = lower_tagged(&p, TaggingDiscipline::UnorderedBounded).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn entry_must_return() {
        let mut pb = ProgramBuilder::new();
        let f = pb.func("main", 0);
        let p = pb.finish(f, tyr_ir::NO_OPERANDS);
        assert!(matches!(
            lower_tagged(&p, TaggingDiscipline::Tyr),
            Err(LowerError::EntryReturnsNothing)
        ));
    }

    #[test]
    fn const_loop_cond_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("forever", [0]);
        let c = f.lt(0, 1); // folds to 1
        f.begin_body(c);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2], [i]);
        let p = pb.finish(f, [out]);
        assert!(matches!(
            lower_tagged(&p, TaggingDiscipline::Tyr),
            Err(LowerError::ConstLoopCond { .. })
        ));
    }

    #[test]
    fn call_lowering_lands_returns() {
        let mut pb = ProgramBuilder::new();
        let mut sq = pb.func("square", 1);
        let x = sq.param(0);
        let xx = sq.mul(x, x);
        let sq_id = sq.id();
        pb.define(sq, [xx]);
        let mut main = pb.func("main", 1);
        let a = main.param(0);
        let r1 = main.call(sq_id, &[a], 1);
        let r2 = main.call(sq_id, &[r1[0]], 1);
        let p = pb.finish(main, [r2[0]]);

        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        // Two call allocates into the callee's space.
        assert_eq!(
            kind_count(&dfg, |k| matches!(k, NK::Allocate { kind: AllocKind::Call, .. })),
            2
        );
        // One dynamic-return changeTag in the callee.
        assert_eq!(kind_count(&dfg, |k| matches!(k, NK::ChangeTagDyn)), 1);
        // The callee block is shared: exactly 2 blocks.
        assert_eq!(dfg.blocks.len(), 2);
    }

    #[test]
    fn every_wire_targets_a_wire_input() {
        // Structural sanity on a nested program: every edge must point at a
        // Wire input port that exists.
        let p = count_loop_program();
        for d in [TaggingDiscipline::Tyr, TaggingDiscipline::UnorderedUnbounded] {
            let dfg = lower_tagged(&p, d).unwrap();
            for n in &dfg.nodes {
                for targets in &n.outs {
                    for t in targets {
                        let dst = dfg.node(t.node);
                        assert!(matches!(dst.ins[t.port as usize], InKind::Wire));
                    }
                }
            }
        }
    }
}
