//! Shared analysis helpers for the lowering passes.

use std::collections::HashSet;

use tyr_ir::{Operand, Region, Stmt, Var};

/// Collects the variables a region *uses* that it does not itself define —
/// i.e. the values that must flow into the region from the enclosing scope
/// (and therefore through steers, when the region is conditional).
pub fn free_vars(region: &Region) -> HashSet<Var> {
    let mut uses = HashSet::new();
    let mut defs = HashSet::new();
    walk(region, &mut uses, &mut defs);
    uses.difference(&defs).copied().collect()
}

fn use_op(o: Operand, uses: &mut HashSet<Var>) {
    if let Operand::Var(v) = o {
        uses.insert(v);
    }
}

fn walk(region: &Region, uses: &mut HashSet<Var>, defs: &mut HashSet<Var>) {
    for stmt in &region.stmts {
        match stmt {
            Stmt::Op { dst, lhs, rhs, .. } => {
                use_op(*lhs, uses);
                use_op(*rhs, uses);
                defs.insert(*dst);
            }
            Stmt::Load { dst, addr } => {
                use_op(*addr, uses);
                defs.insert(*dst);
            }
            Stmt::Store { addr, value } | Stmt::StoreAdd { addr, value } => {
                use_op(*addr, uses);
                use_op(*value, uses);
            }
            Stmt::Select { dst, cond, on_true, on_false } => {
                use_op(*cond, uses);
                use_op(*on_true, uses);
                use_op(*on_false, uses);
                defs.insert(*dst);
            }
            Stmt::If(i) => {
                use_op(i.cond, uses);
                walk(&i.then_region, uses, defs);
                walk(&i.else_region, uses, defs);
                for &(d, t, e) in &i.merges {
                    use_op(t, uses);
                    use_op(e, uses);
                    defs.insert(d);
                }
            }
            Stmt::Loop(l) => {
                // Only the init operands reference the enclosing scope; the
                // loop's interior is a separate concurrent block.
                for &(v, init) in &l.carried {
                    use_op(init, uses);
                    defs.insert(v);
                }
                for &(d, _) in &l.exits {
                    defs.insert(d);
                }
            }
            Stmt::Call { args, rets, .. } => {
                for &a in args {
                    use_op(a, uses);
                }
                for &r in rets {
                    defs.insert(r);
                }
            }
        }
    }
}

/// Variables referenced by a list of operands.
pub fn operand_vars<'a>(ops: impl IntoIterator<Item = &'a Operand>) -> HashSet<Var> {
    let mut out = HashSet::new();
    for &o in ops {
        use_op(o, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::NO_OPERANDS;

    #[test]
    fn free_vars_of_loop_body() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, nn] = f.begin_loop("l", [0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let i2 = f.add(i, 1); // body uses carried `i`
        f.end_loop([i2, nn], NO_OPERANDS);
        let p = pb.finish(f, NO_OPERANDS);
        let tyr_ir::Stmt::Loop(l) = &p.entry_func().body.stmts[0] else { panic!() };
        let fv = free_vars(&l.body);
        // Body references only `i` from outside (the carried var).
        assert_eq!(fv.len(), 1);
        assert!(fv.contains(&l.carried[0].0));
        // The whole function body's free vars: none (param is defined).
        assert!(
            free_vars(&p.entry_func().body).is_empty()
                || free_vars(&p.entry_func().body).contains(&tyr_ir::Var(0))
        );
    }

    #[test]
    fn operand_vars_skips_consts() {
        use tyr_ir::{Operand, Var};
        let ops = [Operand::Const(3), Operand::Var(Var(7)), Operand::Var(Var(7))];
        let vs = operand_vars(ops.iter());
        assert_eq!(vs.len(), 1);
        assert!(vs.contains(&Var(7)));
    }
}
