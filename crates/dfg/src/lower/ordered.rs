//! Ordered-dataflow lowering (RipTide-style; Sec. II-C).
//!
//! No tags: instructions communicate through per-edge FIFO queues, which
//! serialize dynamic instances of the same instruction. Loop-carried values
//! flow through *controlled merges* ([`NodeKind::CMerge`]) whose control
//! FIFO is primed with one "take the initial value" token — after that, the
//! loop's own decider stream selects between backedge and (re-)entry.
//!
//! Function calls cannot share a body under FIFO synchronization (tokens
//! from interleaved callers would mix), so the program is inlined first —
//! exactly what CGRA compilers do.

use std::collections::HashMap;

use tyr_ir::inline::{inline_calls, is_call_free};
use tyr_ir::validate::validate;
use tyr_ir::{LoopStmt, Operand, Program, Region, Stmt, Value, Var};

use crate::graph::{BlockId, Dfg, GraphBuilder, InKind, NodeId, NodeKind, PortRef};
use crate::lower::util::{free_vars, operand_vars};
use crate::lower::LowerError;

/// Lowers a structured program into an untagged, FIFO-synchronized dataflow
/// graph. Calls are inlined automatically.
///
/// # Errors
///
/// Returns a [`LowerError`] if the program fails validation, a loop
/// condition folds to a constant, or the entry function returns nothing.
pub fn lower_ordered(program: &Program) -> Result<Dfg, LowerError> {
    validate(program)?;
    if program.entry_func().returns.is_empty() {
        return Err(LowerError::EntryReturnsNothing);
    }
    let inlined;
    let program = if is_call_free(program) {
        program
    } else {
        inlined = inline_calls(program);
        validate(&inlined)?;
        &inlined
    };

    let mut g = GraphBuilder::new();
    let block = g.add_block("main", None, false);
    let func = program.entry_func();
    let source = g.add_node(NodeKind::Source, block, vec![], func.params.len() + 1, "source");

    let mut lw = Ordered { g, block };
    let mut env: Env = HashMap::new();
    for (k, &p) in func.params.iter().enumerate() {
        env.insert(p, Src::Port(source, k as u16));
    }
    let trigger = Src::Port(source, func.params.len() as u16);

    lw.lower_region(&func.body, &mut env, &trigger)?;

    let ret_srcs: Vec<Src> = func
        .returns
        .iter()
        .map(|&r| {
            let s = lw.resolve(&env, r);
            lw.materialize(s, &trigger)
        })
        .collect();
    let sink =
        lw.g.add_node(NodeKind::Sink, lw.block, vec![InKind::Wire; ret_srcs.len()], 0, "sink");
    for (j, s) in ret_srcs.iter().enumerate() {
        lw.attach(s, PortRef { node: sink, port: j as u16 });
    }
    let dfg = lw.g.finish(source, sink, ret_srcs.len());
    dfg.check().map_err(|detail| LowerError::Malformed { detail })?;
    Ok(dfg)
}

#[derive(Debug, Clone, Copy)]
enum Src {
    Imm(Value),
    Port(NodeId, u16),
}

type Env = HashMap<Var, Src>;

struct Ordered {
    g: GraphBuilder,
    block: BlockId,
}

impl Ordered {
    fn attach(&mut self, s: &Src, to: PortRef) {
        match s {
            Src::Imm(_) => {}
            Src::Port(n, p) => self.g.connect(*n, *p, to),
        }
    }

    fn emit(
        &mut self,
        kind: NodeKind,
        inputs: &[Src],
        n_outs: usize,
        label: impl Into<String>,
    ) -> NodeId {
        let ins: Vec<InKind> = inputs
            .iter()
            .map(|s| match s {
                Src::Imm(v) => InKind::Imm(*v),
                Src::Port(..) => InKind::Wire,
            })
            .collect();
        let id = self.g.add_node(kind, self.block, ins, n_outs, label);
        for (i, s) in inputs.iter().enumerate() {
            self.attach(s, PortRef { node: id, port: i as u16 });
        }
        id
    }

    fn resolve(&self, env: &Env, o: Operand) -> Src {
        match o {
            Operand::Const(c) => Src::Imm(c),
            Operand::Var(v) => *env.get(&v).unwrap_or_else(|| panic!("unbound {v}")),
        }
    }

    fn materialize(&mut self, s: Src, trigger: &Src) -> Src {
        match s {
            Src::Imm(v) => {
                let c = self.emit(NodeKind::Const(v), &[*trigger], 1, "const");
                Src::Port(c, 0)
            }
            p => p,
        }
    }

    fn lower_region(
        &mut self,
        region: &Region,
        env: &mut Env,
        trigger: &Src,
    ) -> Result<(), LowerError> {
        for stmt in &region.stmts {
            self.lower_stmt(stmt, env, trigger)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt, env: &mut Env, trigger: &Src) -> Result<(), LowerError> {
        match stmt {
            Stmt::Op { dst, op, lhs, rhs } => {
                let a = self.resolve(env, *lhs);
                let b = self.resolve(env, *rhs);
                if let (Src::Imm(x), Src::Imm(y)) = (a, b) {
                    let v = op.eval(x, y).map_err(LowerError::ConstFold)?;
                    env.insert(*dst, Src::Imm(v));
                } else {
                    let n = self.emit(
                        NodeKind::Alu(*op),
                        &[a, b],
                        1,
                        format!("{dst}={}", op.mnemonic()),
                    );
                    env.insert(*dst, Src::Port(n, 0));
                }
            }
            Stmt::Load { dst, addr } => {
                let a = self.resolve(env, *addr);
                let inputs: Vec<Src> =
                    if matches!(a, Src::Imm(_)) { vec![a, *trigger] } else { vec![a] };
                let n = self.emit(NodeKind::Load, &inputs, 1, format!("{dst}=load"));
                env.insert(*dst, Src::Port(n, 0));
            }
            Stmt::Store { addr, value } | Stmt::StoreAdd { addr, value } => {
                let a = self.resolve(env, *addr);
                let v = self.resolve(env, *value);
                let mut inputs = vec![a, v];
                if inputs.iter().all(|s| matches!(s, Src::Imm(_))) {
                    inputs.push(*trigger);
                }
                let kind = if matches!(stmt, Stmt::Store { .. }) {
                    NodeKind::Store
                } else {
                    NodeKind::StoreAdd
                };
                self.emit(kind, &inputs, 0, "store");
            }
            Stmt::Select { dst, cond, on_true, on_false } => {
                let c = self.resolve(env, *cond);
                let t = self.resolve(env, *on_true);
                let f = self.resolve(env, *on_false);
                if let Src::Imm(cv) = c {
                    env.insert(*dst, if cv != 0 { t } else { f });
                } else {
                    let n = self.emit(NodeKind::Select, &[c, t, f], 1, format!("{dst}=select"));
                    env.insert(*dst, Src::Port(n, 0));
                }
            }
            Stmt::If(i) => {
                let c = self.resolve(env, i.cond);
                if let Src::Imm(cv) = c {
                    let taken = if cv != 0 { &i.then_region } else { &i.else_region };
                    let mut benv = env.clone();
                    self.lower_region(taken, &mut benv, trigger)?;
                    for &(d, t, e) in &i.merges {
                        let src = self.resolve(&benv, if cv != 0 { t } else { e });
                        env.insert(d, src);
                    }
                    return Ok(());
                }
                let anchor = self.emit(NodeKind::Steer, &[c, c], 2, "if.anchor");
                let mut steers: HashMap<Var, NodeId> = HashMap::new();
                let mut side_env = |lw: &mut Self,
                                    region: &Region,
                                    ops: Vec<Operand>,
                                    side: u16,
                                    env: &Env|
                 -> Env {
                    let mut uses: Vec<Var> =
                        free_vars(region).union(&operand_vars(ops.iter())).copied().collect();
                    uses.sort();
                    let mut out = Env::new();
                    for v in uses {
                        match env.get(&v) {
                            Some(Src::Imm(x)) => {
                                out.insert(v, Src::Imm(*x));
                            }
                            Some(src) => {
                                let s = *steers.entry(v).or_insert_with(|| {
                                    lw.emit(NodeKind::Steer, &[c, *src], 2, format!("steer.{v}"))
                                });
                                out.insert(v, Src::Port(s, side));
                            }
                            None => {}
                        }
                    }
                    out
                };
                let then_ops: Vec<Operand> = i.merges.iter().map(|&(_, t, _)| t).collect();
                let mut tenv = side_env(self, &i.then_region, then_ops, 0, env);
                let tt = Src::Port(anchor, 0);
                self.lower_region(&i.then_region, &mut tenv, &tt)?;
                let else_ops: Vec<Operand> = i.merges.iter().map(|&(_, _, e)| e).collect();
                let mut eenv = side_env(self, &i.else_region, else_ops, 1, env);
                let et = Src::Port(anchor, 1);
                self.lower_region(&i.else_region, &mut eenv, &et)?;
                for &(d, t, e) in &i.merges {
                    let ts = self.resolve(&tenv, t);
                    let ts = self.materialize(ts, &tt);
                    let es = self.resolve(&eenv, e);
                    let es = self.materialize(es, &et);
                    // Decider-controlled merge keeps FIFO order across
                    // activations (a free-running merge could reorder).
                    let m = self.emit(
                        NodeKind::CMerge { initial_ctl: vec![] },
                        &[c, es, ts],
                        1,
                        format!("{d}=cmerge"),
                    );
                    env.insert(d, Src::Port(m, 0));
                }
            }
            Stmt::Loop(l) => self.lower_loop(l, env, trigger)?,
            Stmt::Call { .. } => return Err(LowerError::OrderedNeedsInline),
        }
        Ok(())
    }

    fn lower_loop(&mut self, l: &LoopStmt, env: &mut Env, trigger: &Src) -> Result<(), LowerError> {
        // Controlled merges for the carried values. Control convention:
        // 0 = pop the init side (in1), non-zero = pop the backedge (in2).
        // The control FIFO is primed with a single 0 so the first entry takes
        // the inits; thereafter the loop's own decider stream drives it (the
        // final 0 of each execution primes the *next* entry).
        let mut cms = Vec::with_capacity(l.carried.len());
        let mut cenv: Env = HashMap::new();
        for (v, init) in &l.carried {
            let init_src = self.resolve(env, *init);
            // Constant inits must arrive as one-shot *tokens* (one per loop
            // entry): an immediate would be an infinite supply and the
            // leftover "take-init" control token would re-enter the loop
            // after it finishes.
            let init_src = self.materialize(init_src, trigger);
            let cm = self.g.add_node(
                NodeKind::CMerge { initial_ctl: vec![0] },
                self.block,
                vec![InKind::Wire, InKind::Wire, InKind::Wire],
                1,
                format!("{}::carry.{v}", l.label),
            );
            match init_src {
                Src::Imm(_) => unreachable!("materialized"),
                Src::Port(n, p) => self.g.connect(n, p, PortRef { node: cm, port: 1 }),
            }
            cms.push(cm);
            cenv.insert(*v, Src::Port(cm, 0));
        }

        // Per-iteration prologue and test.
        let dummy_trigger = Src::Imm(0); // pre is pure; trigger is never used
        self.lower_region(&l.pre, &mut cenv, &dummy_trigger)?;
        let cond = self.resolve(&cenv, l.cond);
        let Src::Port(..) = cond else {
            return Err(LowerError::ConstLoopCond { label: l.label.clone() });
        };
        // Decider drives every carry merge's control FIFO.
        for &cm in &cms {
            self.attach(&cond, PortRef { node: cm, port: 0 });
        }
        // Anchor steer: per-taken-iteration trigger token.
        let anchor = self.emit(NodeKind::Steer, &[cond, cond], 2, format!("{}::anchor", l.label));
        let body_trigger = Src::Port(anchor, 0);

        // Steers route carried/pre values into the body or out to the exits.
        let mut steers: HashMap<Var, NodeId> = HashMap::new();
        let mut get_steer = |lw: &mut Self, v: Var, cenv: &Env| -> NodeId {
            *steers.entry(v).or_insert_with(|| {
                let src = *cenv.get(&v).expect("validated scope");
                lw.emit(NodeKind::Steer, &[cond, src], 2, format!("{}::steer.{v}", l.label))
            })
        };

        let mut body_uses: Vec<Var> =
            free_vars(&l.body).union(&operand_vars(l.next.iter())).copied().collect();
        body_uses.sort();
        let mut benv: Env = HashMap::new();
        for v in body_uses {
            match cenv.get(&v) {
                Some(Src::Imm(x)) => {
                    benv.insert(v, Src::Imm(*x));
                }
                Some(_) => {
                    let s = get_steer(self, v, &cenv);
                    benv.insert(v, Src::Port(s, 0));
                }
                None => {}
            }
        }
        self.lower_region(&l.body, &mut benv, &body_trigger)?;

        // Backedge: next values into the carry merges.
        for (k, &nxt) in l.next.iter().enumerate() {
            let s = self.resolve(&benv, nxt);
            match s {
                Src::Imm(v) => self.g.set_imm(cms[k], 2, v),
                Src::Port(n, p) => self.g.connect(n, p, PortRef { node: cms[k], port: 2 }),
            }
        }

        // Exits: the not-taken side of the steers.
        for &(d, src_op) in &l.exits {
            let s = match src_op {
                Operand::Const(c) => Src::Imm(c),
                Operand::Var(v) => match cenv.get(&v) {
                    Some(Src::Imm(x)) => Src::Imm(*x),
                    Some(_) => {
                        let st = get_steer(self, v, &cenv);
                        Src::Port(st, 1)
                    }
                    None => panic!("exit var {v} not in loop scope"),
                },
            };
            env.insert(d, s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind as NK;
    use tyr_ir::build::ProgramBuilder;

    #[test]
    fn loop_uses_controlled_merges() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, nn], [acc]);
        let p = pb.finish(f, [total]);
        let dfg = lower_ordered(&p).unwrap();
        let cmerges = dfg.nodes.iter().filter(|n| matches!(n.kind, NK::CMerge { .. })).count();
        assert_eq!(cmerges, 3); // one per carried var
                                // No tag machinery at all.
        assert!(dfg.nodes.iter().all(|n| !matches!(
            n.kind,
            NK::Allocate { .. } | NK::NewTag | NK::Free { .. } | NK::ChangeTag | NK::ChangeTagDyn
        )));
        // CMerge control FIFOs are primed with exactly one token.
        for n in &dfg.nodes {
            if let NK::CMerge { initial_ctl } = &n.kind {
                assert_eq!(initial_ctl.len(), 1);
            }
        }
    }

    #[test]
    fn calls_are_inlined() {
        let mut pb = ProgramBuilder::new();
        let mut sq = pb.func("square", 1);
        let x = sq.param(0);
        let xx = sq.mul(x, x);
        let sq_id = sq.id();
        pb.define(sq, [xx]);
        let mut main = pb.func("main", 1);
        let a = main.param(0);
        let r = main.call(sq_id, &[a], 1);
        let p = pb.finish(main, [r[0]]);
        let dfg = lower_ordered(&p).unwrap();
        // Inlining leaves a plain mul + mov; exactly one block.
        assert_eq!(dfg.blocks.len(), 1);
        assert!(dfg.nodes.iter().any(|n| matches!(n.kind, NK::Alu(tyr_ir::AluOp::Mul))));
    }

    #[test]
    fn each_wire_input_has_exactly_one_producer() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, nn] = f.begin_loop("l", [0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        let [last] = f.end_loop([i2, nn], [i]);
        let p = pb.finish(f, [last]);
        let dfg = lower_ordered(&p).unwrap();
        let mut producer_count: HashMap<(u32, u16), usize> = HashMap::new();
        for n in &dfg.nodes {
            for targets in &n.outs {
                for t in targets {
                    *producer_count.entry((t.node.0, t.port)).or_default() += 1;
                }
            }
        }
        for ((node, port), count) in producer_count {
            assert_eq!(
                count, 1,
                "ordered input n{node}.i{port} has {count} producers (FIFO order would break)"
            );
        }
    }
}
