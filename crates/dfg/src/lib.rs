//! Elaborated dataflow graphs and per-architecture lowering for the TYR
//! reproduction.
//!
//! This crate is "the compiler back-end" of the paper (Sec. IV-C): it takes
//! the structured IR of `tyr-ir` and produces executable dataflow graphs for
//! the engines in `tyr-sim`:
//!
//! * [`lower::lower_tagged`] — tagged elaborations: TYR's concurrent-block
//!   linkage with local tag spaces (Fig. 10), or the naïve unordered
//!   elaborations (global tag space, bounded or unbounded) it is compared
//!   against.
//! * [`lower::lower_ordered`] — untagged ordered dataflow with per-edge
//!   FIFOs and controlled merges.
//!
//! # Example
//!
//! ```
//! use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
//! use tyr_ir::build::ProgramBuilder;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.func("main", 1);
//! let n = f.param(0);
//! let [i, nn] = f.begin_loop("count", [0.into(), n]);
//! let c = f.lt(i, nn);
//! f.begin_body(c);
//! let i2 = f.add(i, 1);
//! let [last] = f.end_loop([i2, nn], [i]);
//! let program = pb.finish(f, [last]);
//!
//! let dfg = lower_tagged(&program, TaggingDiscipline::Tyr)?;
//! // main + one loop = two concurrent blocks, each with its own tag space.
//! assert_eq!(dfg.blocks.len(), 2);
//! # Ok::<(), tyr_dfg::lower::LowerError>(())
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod lower;

pub use graph::{
    AllocKind, BlockId, BlockInfo, Dfg, Edge, GraphBuilder, InKind, Node, NodeId, NodeKind,
    PortRef, ROOT_BLOCK,
};
pub use lower::{LowerError, TaggingDiscipline};
