//! Sequential reference interpreter.
//!
//! This is both:
//!
//! * the **correctness oracle** — every dataflow engine's output memory is
//!   compared against it in tests, and
//! * the **sequential von Neumann baseline** of the paper's evaluation
//!   (Sec. II-C / Fig. 5a): one instruction retires per cycle, and live state
//!   is the number of bound values across the activation stack (the machine's
//!   architectural registers + stack).
//!
//! Hook the per-instruction stream via [`Tracer`] (used by
//! `tyr-sim`'s vN engine to record cycles, IPC, and live state).

use std::fmt;

use crate::memory::{MemError, MemoryImage};
use crate::program::{Program, Region, Stmt};
use crate::types::{AluError, FuncId, Operand, Value, Var};

/// Observes the dynamic instruction stream of the interpreter.
pub trait Tracer {
    /// Called once per retired dynamic instruction, with the number of live
    /// (bound) values across all activation frames after the instruction.
    fn on_instr(&mut self, live_values: u64);

    /// Richer hook carrying exact def-use identities, for dependence-aware
    /// models (e.g. the out-of-order window engine): `def` is this
    /// instruction's definition id (every dynamic instruction gets a fresh
    /// one) and `srcs` are the definition ids of its operands (`0` for
    /// constants and program arguments). The default forwards to
    /// [`Tracer::on_instr`].
    fn on_instr_deps(&mut self, live_values: u64, def: u64, srcs: &[u64]) {
        let _ = (def, srcs);
        self.on_instr(live_values);
    }

    /// Polled once per retired instruction, after [`Tracer::on_instr`].
    /// Return `true` to stop the interpreter with [`InterpError::Halted`] —
    /// this is how `tyr-sim`'s interpreter-backed engines implement run
    /// watchdogs (wall-clock deadlines and cooperative cancellation) without
    /// the interpreter knowing about them. The default never halts.
    fn poll_halt(&mut self) -> bool {
        false
    }

    /// Called once per architectural memory access, before the retiring
    /// instruction's [`Tracer::on_instr`]: `write` is `true` for `store` and
    /// `store_add` (one write each — the read-modify-write is atomic),
    /// `false` for `load`. The interpreter-backed engines forward this into
    /// the probe layer's `MemAccess` event and their load/store counters.
    /// The default ignores it.
    fn on_mem(&mut self, addr: Value, write: bool) {
        let _ = (addr, write);
    }
}

/// A tracer that ignores everything (for oracle runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NopTracer;

impl Tracer for NopTracer {
    fn on_instr(&mut self, _live_values: u64) {}
}

/// Result of a successful interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpOutput {
    /// The entry function's return values.
    pub returns: Vec<Value>,
    /// Total dynamic instructions retired.
    pub dyn_instrs: u64,
}

/// Interpreter error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Arithmetic fault.
    Alu(AluError),
    /// Memory fault.
    Mem(MemError),
    /// Read of a variable that was never bound (a validation gap).
    Unbound(Var),
    /// Argument count does not match the entry function's parameters.
    ArityMismatch {
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// The configured instruction budget was exhausted (runaway loop guard).
    OutOfFuel,
    /// The [`Tracer`] asked the interpreter to stop (see
    /// [`Tracer::poll_halt`]). The partial execution's side effects are
    /// already in the memory image; no return values are produced.
    Halted,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Alu(e) => write!(f, "alu fault: {e}"),
            InterpError::Mem(e) => write!(f, "memory fault: {e}"),
            InterpError::Unbound(v) => write!(f, "use of unbound variable {v}"),
            InterpError::ArityMismatch { expected, got } => {
                write!(f, "entry expects {expected} arguments, got {got}")
            }
            InterpError::OutOfFuel => write!(f, "instruction budget exhausted"),
            InterpError::Halted => write!(f, "halted by the tracer"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<AluError> for InterpError {
    fn from(e: AluError) -> Self {
        InterpError::Alu(e)
    }
}

impl From<MemError> for InterpError {
    fn from(e: MemError) -> Self {
        InterpError::Mem(e)
    }
}

/// Runs `program` on `mem` with the given arguments and a default fuel of
/// `u64::MAX`, without tracing.
///
/// # Errors
///
/// See [`InterpError`].
pub fn run(
    program: &Program,
    mem: &mut MemoryImage,
    args: &[Value],
) -> Result<InterpOutput, InterpError> {
    run_traced(program, mem, args, u64::MAX, &mut NopTracer)
}

/// Runs `program` with an instruction budget and a [`Tracer`].
///
/// # Errors
///
/// See [`InterpError`].
pub fn run_traced<T: Tracer>(
    program: &Program,
    mem: &mut MemoryImage,
    args: &[Value],
    fuel: u64,
    tracer: &mut T,
) -> Result<InterpOutput, InterpError> {
    let entry = program.entry_func();
    if args.len() != entry.params.len() {
        return Err(InterpError::ArityMismatch { expected: entry.params.len(), got: args.len() });
    }
    let mut interp = Interp { program, mem, tracer, fuel, retired: 0, live: 0, next_def: 0 };
    let arg_defs: Vec<(Value, u64)> = args.iter().map(|&a| (a, 0)).collect();
    let returns = interp.call(program.entry, &arg_defs)?.into_iter().map(|(v, _)| v).collect();
    Ok(InterpOutput { returns, dyn_instrs: interp.retired })
}

/// One activation frame: variable bindings (and their definition ids) for a
/// function instance.
struct Frame {
    env: Vec<Option<Value>>,
    defs: Vec<u64>,
}

impl Frame {
    fn get(&self, v: Var) -> Result<Value, InterpError> {
        self.env.get(v.0 as usize).copied().flatten().ok_or(InterpError::Unbound(v))
    }
}

struct Interp<'a, T: Tracer> {
    program: &'a Program,
    mem: &'a mut MemoryImage,
    tracer: &'a mut T,
    fuel: u64,
    retired: u64,
    /// Bound values across all frames (the vN live-state metric).
    live: u64,
    /// Monotonic definition-id counter (0 = constants/arguments).
    next_def: u64,
}

impl<'a, T: Tracer> Interp<'a, T> {
    fn fresh_def(&mut self) -> u64 {
        self.next_def += 1;
        self.next_def
    }

    fn retire(&mut self, def: u64, srcs: &[u64]) -> Result<(), InterpError> {
        if self.retired >= self.fuel {
            return Err(InterpError::OutOfFuel);
        }
        self.retired += 1;
        self.tracer.on_instr_deps(self.live, def, srcs);
        if self.tracer.poll_halt() {
            return Err(InterpError::Halted);
        }
        Ok(())
    }

    fn bind(&mut self, frame: &mut Frame, v: Var, value: Value, def: u64) {
        let slot = &mut frame.env[v.0 as usize];
        if slot.is_none() {
            self.live += 1;
        }
        *slot = Some(value);
        frame.defs[v.0 as usize] = def;
    }

    fn unbind(&mut self, frame: &mut Frame, v: Var) {
        let slot = &mut frame.env[v.0 as usize];
        if slot.is_some() {
            self.live -= 1;
        }
        *slot = None;
        frame.defs[v.0 as usize] = 0;
    }

    fn operand(&self, frame: &Frame, o: Operand) -> Result<Value, InterpError> {
        match o {
            Operand::Var(v) => frame.get(v),
            Operand::Const(c) => Ok(c),
        }
    }

    /// Definition id of an operand (0 for constants).
    fn dep(&self, frame: &Frame, o: Operand) -> u64 {
        match o {
            Operand::Var(v) => frame.defs[v.0 as usize],
            Operand::Const(_) => 0,
        }
    }

    fn call(
        &mut self,
        func: FuncId,
        args: &[(Value, u64)],
    ) -> Result<Vec<(Value, u64)>, InterpError> {
        let f = self.program.func(func);
        debug_assert_eq!(f.params.len(), args.len(), "call arity to '{}'", f.name);
        let mut frame =
            Frame { env: vec![None; f.n_vars as usize], defs: vec![0; f.n_vars as usize] };
        for (&p, &(a, d)) in f.params.iter().zip(args) {
            self.bind(&mut frame, p, a, d);
        }
        self.exec_region(&f.body, &mut frame)?;
        let rets: Vec<(Value, u64)> = f
            .returns
            .iter()
            .map(|&r| Ok((self.operand(&frame, r)?, self.dep(&frame, r))))
            .collect::<Result<_, InterpError>>()?;
        // Frame teardown: all its bindings die.
        self.live -= frame.env.iter().filter(|s| s.is_some()).count() as u64;
        Ok(rets)
    }

    fn exec_region(&mut self, region: &Region, frame: &mut Frame) -> Result<(), InterpError> {
        for stmt in &region.stmts {
            self.exec_stmt(stmt, frame)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<(), InterpError> {
        match stmt {
            Stmt::Op { dst, op, lhs, rhs } => {
                let a = self.operand(frame, *lhs)?;
                let b = self.operand(frame, *rhs)?;
                let (da, db) = (self.dep(frame, *lhs), self.dep(frame, *rhs));
                let v = op.eval(a, b)?;
                let def = self.fresh_def();
                self.bind(frame, *dst, v, def);
                self.retire(def, &[da, db])?;
            }
            Stmt::Load { dst, addr } => {
                let a = self.operand(frame, *addr)?;
                let da = self.dep(frame, *addr);
                let v = self.mem.load(a)?;
                self.tracer.on_mem(a, false);
                let def = self.fresh_def();
                self.bind(frame, *dst, v, def);
                self.retire(def, &[da])?;
            }
            Stmt::Store { addr, value } => {
                let a = self.operand(frame, *addr)?;
                let v = self.operand(frame, *value)?;
                let (da, dv) = (self.dep(frame, *addr), self.dep(frame, *value));
                self.mem.store(a, v)?;
                self.tracer.on_mem(a, true);
                let def = self.fresh_def();
                self.retire(def, &[da, dv])?;
            }
            Stmt::StoreAdd { addr, value } => {
                let a = self.operand(frame, *addr)?;
                let v = self.operand(frame, *value)?;
                let (da, dv) = (self.dep(frame, *addr), self.dep(frame, *value));
                self.mem.fetch_add(a, v)?;
                self.tracer.on_mem(a, true);
                let def = self.fresh_def();
                self.retire(def, &[da, dv])?;
            }
            Stmt::Select { dst, cond, on_true, on_false } => {
                let c = self.operand(frame, *cond)?;
                let v = if c != 0 {
                    self.operand(frame, *on_true)?
                } else {
                    self.operand(frame, *on_false)?
                };
                let srcs =
                    [self.dep(frame, *cond), self.dep(frame, *on_true), self.dep(frame, *on_false)];
                let def = self.fresh_def();
                self.bind(frame, *dst, v, def);
                self.retire(def, &srcs)?;
            }
            Stmt::If(i) => {
                let c = self.operand(frame, *cond_of(i))?;
                let dc = self.dep(frame, *cond_of(i));
                let branch_def = self.fresh_def();
                self.retire(branch_def, &[dc])?; // the branch
                let (taken, merge_side) =
                    if c != 0 { (&i.then_region, 0) } else { (&i.else_region, 1) };
                self.exec_region(taken, frame)?;
                let merged: Vec<(Var, Value, u64)> = i
                    .merges
                    .iter()
                    .map(|&(d, t, e)| {
                        let src = if merge_side == 0 { t } else { e };
                        self.operand(frame, src).map(|v| (d, v, self.dep(frame, src)))
                    })
                    .collect::<Result<_, _>>()?;
                // Kill branch-local bindings before binding merges.
                for v in region_defs(taken) {
                    self.unbind(frame, v);
                }
                for (d, v, dd) in merged {
                    self.bind(frame, d, v, dd);
                }
            }
            Stmt::Loop(l) => {
                // Bind carried vars to their initial values.
                let inits: Vec<(Var, Value, u64)> = l
                    .carried
                    .iter()
                    .map(|&(v, init)| {
                        self.operand(frame, init).map(|x| (v, x, self.dep(frame, init)))
                    })
                    .collect::<Result<_, _>>()?;
                for (v, x, d) in inits {
                    self.bind(frame, v, x, d);
                }
                loop {
                    self.exec_region(&l.pre, frame)?;
                    let c = self.operand(frame, l.cond)?;
                    let dc = self.dep(frame, l.cond);
                    let branch_def = self.fresh_def();
                    self.retire(branch_def, &[dc])?; // the loop branch
                    if c == 0 {
                        break;
                    }
                    self.exec_region(&l.body, frame)?;
                    let nexts: Vec<(Value, u64)> = l
                        .next
                        .iter()
                        .map(|&n| self.operand(frame, n).map(|v| (v, self.dep(frame, n))))
                        .collect::<Result<_, _>>()?;
                    for (&(v, _), (x, d)) in l.carried.iter().zip(nexts) {
                        self.bind(frame, v, x, d);
                    }
                }
                // Evaluate exits over carried/pre vars, then kill the loop's scope.
                let exits: Vec<(Var, Value, u64)> = l
                    .exits
                    .iter()
                    .map(|&(d, src)| self.operand(frame, src).map(|v| (d, v, self.dep(frame, src))))
                    .collect::<Result<_, _>>()?;
                for (v, _) in &l.carried {
                    self.unbind(frame, *v);
                }
                for v in region_defs(&l.pre).chain(region_defs(&l.body)) {
                    self.unbind(frame, v);
                }
                for (d, v, dd) in exits {
                    self.bind(frame, d, v, dd);
                }
            }
            Stmt::Call { func, args, rets } => {
                let argv: Vec<(Value, u64)> = args
                    .iter()
                    .map(|&a| self.operand(frame, a).map(|v| (v, self.dep(frame, a))))
                    .collect::<Result<_, _>>()?;
                let arg_deps: Vec<u64> = argv.iter().map(|&(_, d)| d).collect();
                let call_def = self.fresh_def();
                self.retire(call_def, &arg_deps)?; // the call
                let retv = self.call(*func, &argv)?;
                let ret_deps: Vec<u64> = retv.iter().map(|&(_, d)| d).collect();
                let ret_def = self.fresh_def();
                self.retire(ret_def, &ret_deps)?; // the return
                debug_assert_eq!(retv.len(), rets.len(), "return arity");
                for (&d, (v, dd)) in rets.iter().zip(retv) {
                    self.bind(frame, d, v, dd);
                }
            }
        }
        Ok(())
    }
}

fn cond_of(i: &crate::program::IfStmt) -> &Operand {
    &i.cond
}

/// All variables defined anywhere inside a region (recursively).
fn region_defs(region: &Region) -> impl Iterator<Item = Var> + '_ {
    let mut out = Vec::new();
    collect_defs(region, &mut out);
    out.into_iter()
}

fn collect_defs(region: &Region, out: &mut Vec<Var>) {
    for stmt in &region.stmts {
        out.extend(stmt.defs());
        match stmt {
            Stmt::Loop(l) => {
                out.extend(l.carried.iter().map(|&(v, _)| v));
                collect_defs(&l.pre, out);
                collect_defs(&l.body, out);
            }
            Stmt::If(i) => {
                collect_defs(&i.then_region, out);
                collect_defs(&i.else_region, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::types::NO_OPERANDS;

    /// A tracer that records the peak live-value count.
    #[derive(Default)]
    struct PeakTracer {
        peak: u64,
        instrs: u64,
    }

    impl Tracer for PeakTracer {
        fn on_instr(&mut self, live: u64) {
            self.peak = self.peak.max(live);
            self.instrs += 1;
        }
    }

    fn sum_to_n_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, n] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, n);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, n], [acc]);
        pb.finish(f, [total])
    }

    #[test]
    fn sum_loop() {
        let p = sum_to_n_program();
        let mut mem = MemoryImage::new();
        let out = run(&p, &mut mem, &[100]).unwrap();
        assert_eq!(out.returns, vec![4950]);
        // Per iteration: lt + branch + add + add = 4, plus the final test (lt
        // + branch) = 2.
        assert_eq!(out.dyn_instrs, 100 * 4 + 2);
    }

    #[test]
    fn arity_mismatch() {
        let p = sum_to_n_program();
        let mut mem = MemoryImage::new();
        assert_eq!(run(&p, &mut mem, &[]), Err(InterpError::ArityMismatch { expected: 1, got: 0 }));
    }

    #[test]
    fn fuel_limit() {
        let p = sum_to_n_program();
        let mut mem = MemoryImage::new();
        let err = run_traced(&p, &mut mem, &[1_000_000], 10, &mut NopTracer).unwrap_err();
        assert_eq!(err, InterpError::OutOfFuel);
    }

    #[test]
    fn memory_ops() {
        let mut mem = MemoryImage::new();
        let a = mem.alloc_init("a", &[5, 7]);
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let x = f.load(a.base_const());
        let y = f.load(a.base_const() + 1);
        let s = f.add(x, y);
        f.store(a.base_const(), s);
        f.store_add(a.base_const() + 1, 100);
        let p = pb.finish(f, NO_OPERANDS);
        run(&p, &mut mem, &[]).unwrap();
        assert_eq!(mem.slice(a), &[12, 107]);
    }

    #[test]
    fn live_state_is_bounded_by_scope() {
        // A loop that binds body vars every iteration must not leak live
        // count across iterations; after the loop the scope dies.
        let p = sum_to_n_program();
        let mut mem = MemoryImage::new();
        let mut t = PeakTracer::default();
        run_traced(&p, &mut mem, &[1000], u64::MAX, &mut t).unwrap();
        // main frame holds: n, i, acc, lt-result, add results, total.
        assert!(t.peak < 12, "vN live state should be register-like, got {}", t.peak);
        assert!(t.instrs > 0);
    }

    #[test]
    fn div_by_zero_faults() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let x = f.param(0);
        let d = f.div(1, x);
        let p = pb.finish(f, [d]);
        let mut mem = MemoryImage::new();
        assert_eq!(run(&p, &mut mem, &[0]), Err(InterpError::Alu(AluError::DivByZero)));
        assert_eq!(run(&p, &mut mem, &[2]).unwrap().returns, vec![0]);
    }

    #[test]
    fn nested_loops_match_closed_form() {
        // sum_{i<8} sum_{j<i} (i*j)
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("outer", [0, 0]);
        let c = f.lt(i, 8);
        f.begin_body(c);
        let [j, inner_acc, ii] = f.begin_loop("inner", [0.into(), acc, i]);
        let cj = f.lt(j, ii);
        f.begin_body(cj);
        let prod = f.mul(ii, j);
        let ia2 = f.add(inner_acc, prod);
        let j2 = f.add(j, 1);
        let [acc_out] = f.end_loop([j2, ia2, ii], [inner_acc]);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc_out], [acc]);
        let p = pb.finish(f, [total]);
        let mut mem = MemoryImage::new();
        let expected: i64 = (0..8).flat_map(|i| (0..i).map(move |j| i * j)).sum();
        assert_eq!(run(&p, &mut mem, &[]).unwrap().returns, vec![expected]);
    }

    #[test]
    fn if_kills_branch_locals() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let x = f.param(0);
        let c = f.gt(x, 0);
        f.begin_if(c);
        let a = f.add(x, 1);
        let b = f.add(a, 1);
        f.begin_else();
        let e = f.sub(x, 1);
        let [m] = f.end_if([(b, e)]);
        let p = pb.finish(f, [m]);
        let mut mem = MemoryImage::new();
        let mut t = PeakTracer::default();
        let out = run_traced(&p, &mut mem, &[5], u64::MAX, &mut t).unwrap();
        assert_eq!(out.returns, vec![7]);
        let out = run(&p, &mut mem, &[-5]).unwrap();
        assert_eq!(out.returns, vec![-6]);
    }
}

#[cfg(test)]
mod dep_tests {
    //! The def-use stream exposed through [`Tracer::on_instr_deps`] must
    //! reflect true dependences (consumed by the OoO engine).

    use super::*;
    use crate::build::ProgramBuilder;

    #[derive(Default)]
    struct DepRecorder {
        events: Vec<(u64, Vec<u64>)>,
    }

    impl Tracer for DepRecorder {
        fn on_instr(&mut self, _live: u64) {
            unreachable!("interp must call on_instr_deps");
        }
        fn on_instr_deps(&mut self, _live: u64, def: u64, srcs: &[u64]) {
            self.events.push((def, srcs.to_vec()));
        }
    }

    #[test]
    fn defs_are_fresh_and_srcs_point_backwards() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let x = f.param(0);
        let a = f.add(x, 1); // srcs: [param(0)=0, const=0]
        let b = f.mul(a, a); // srcs: [def(a), def(a)]
        let _c = f.sub(b, x); // srcs: [def(b), 0]
        let p = pb.finish(f, [b]);
        let mut mem = MemoryImage::new();
        let mut t = DepRecorder::default();
        run_traced(&p, &mut mem, &[3], u64::MAX, &mut t).unwrap();
        assert_eq!(t.events.len(), 3);
        let (def_a, srcs_a) = &t.events[0];
        assert_eq!(srcs_a, &vec![0, 0]);
        let (def_b, srcs_b) = &t.events[1];
        assert_eq!(srcs_b, &vec![*def_a, *def_a]);
        let (def_c, srcs_c) = &t.events[2];
        assert_eq!(srcs_c, &vec![*def_b, 0]);
        // Defs strictly increase.
        assert!(def_a < def_b && def_b < def_c);
    }

    #[test]
    fn loop_carried_deps_cross_iterations() {
        // acc chains through iterations: each add's src includes the
        // previous iteration's add.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("l", [0, 0]);
        let c = f.lt(i, 3);
        f.begin_body(c);
        let acc2 = f.add(acc, 10);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2], [acc]);
        let p = pb.finish(f, [out]);
        let mut mem = MemoryImage::new();
        let mut t = DepRecorder::default();
        run_traced(&p, &mut mem, &[], u64::MAX, &mut t).unwrap();
        // Per iteration: lt, branch, add(acc), add(i); final: lt, branch.
        assert_eq!(t.events.len(), 3 * 4 + 2);
        // The acc-adds are events 2, 6, 10; each sources the previous one.
        let acc_defs: Vec<u64> = [2usize, 6, 10].iter().map(|&k| t.events[k].0).collect();
        assert_eq!(t.events[6].1[0], acc_defs[0]);
        assert_eq!(t.events[10].1[0], acc_defs[1]);
    }
}
