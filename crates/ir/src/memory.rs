//! The simulated flat word memory.
//!
//! All engines share this model (Sec. VI: idealized single-cycle memory).
//! Arrays are allocated as named segments of a flat `i64` word space;
//! kernels bake the returned base addresses into their instruction stream as
//! immediates, exactly as a compiler would with static data.

use std::fmt;

use crate::types::Value;

/// A named array segment within a [`MemoryImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayRef {
    /// First word address of the segment.
    pub base: usize,
    /// Length in words.
    pub len: usize,
}

impl ArrayRef {
    /// The base address as an instruction immediate.
    pub fn base_const(&self) -> Value {
        self.base as Value
    }
}

/// Error for out-of-bounds or malformed memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Address outside the allocated word space (or negative).
    OutOfBounds {
        /// The offending word address.
        addr: Value,
        /// Allocated size in words.
        size: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size } => {
                write!(f, "memory access at {addr} out of bounds (size {size} words)")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A flat, bounds-checked word memory with named array segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryImage {
    words: Vec<Value>,
    arrays: Vec<(String, ArrayRef)>,
}

impl Default for MemoryImage {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryImage {
    /// Creates a memory containing only the guard word.
    ///
    /// Word 0 is reserved and never handed out by [`alloc`](Self::alloc):
    /// no segment base can equal 0, so the ubiquitous constant 0 (loop
    /// inits, ctl triggers) is never mistaken for an array base. The static
    /// race detector in `tyr-verify` relies on this to classify address
    /// expressions by exact base match, and a stray null-ish access lands in
    /// a word no kernel owns instead of silently corrupting the first array.
    pub fn new() -> Self {
        MemoryImage { words: vec![0], arrays: Vec::new() }
    }

    /// Allocates a zero-initialized array of `len` words.
    pub fn alloc(&mut self, name: &str, len: usize) -> ArrayRef {
        let base = self.words.len();
        self.words.resize(base + len, 0);
        let r = ArrayRef { base, len };
        self.arrays.push((name.to_string(), r));
        r
    }

    /// Allocates an array initialized with `data`.
    pub fn alloc_init(&mut self, name: &str, data: &[Value]) -> ArrayRef {
        let r = self.alloc(name, data.len());
        self.words[r.base..r.base + r.len].copy_from_slice(data);
        r
    }

    /// Looks up an array by name (first match).
    pub fn array(&self, name: &str) -> Option<ArrayRef> {
        self.arrays.iter().find(|(n, _)| n == name).map(|&(_, r)| r)
    }

    /// Returns the contents of an array segment.
    pub fn slice(&self, r: ArrayRef) -> &[Value] {
        &self.words[r.base..r.base + r.len]
    }

    /// Returns the mutable contents of an array segment.
    pub fn slice_mut(&mut self, r: ArrayRef) -> &mut [Value] {
        &mut self.words[r.base..r.base + r.len]
    }

    /// Total allocated words.
    pub fn size(&self) -> usize {
        self.words.len()
    }

    fn index(&self, addr: Value) -> Result<usize, MemError> {
        if addr < 0 || addr as usize >= self.words.len() {
            Err(MemError::OutOfBounds { addr, size: self.words.len() })
        } else {
            Ok(addr as usize)
        }
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` is outside memory.
    pub fn load(&self, addr: Value) -> Result<Value, MemError> {
        Ok(self.words[self.index(addr)?])
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` is outside memory.
    pub fn store(&mut self, addr: Value, value: Value) -> Result<(), MemError> {
        let i = self.index(addr)?;
        self.words[i] = value;
        Ok(())
    }

    /// Atomically adds `value` to the word at `addr` (single-cycle
    /// fetch-add; see DESIGN.md §2).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` is outside memory.
    pub fn fetch_add(&mut self, addr: Value, value: Value) -> Result<(), MemError> {
        let i = self.index(addr)?;
        self.words[i] = self.words[i].wrapping_add(value);
        Ok(())
    }

    /// All named arrays in allocation order.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, ArrayRef)> {
        self.arrays.iter().map(|(n, r)| (n.as_str(), *r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", 4);
        let b = m.alloc_init("b", &[10, 20]);
        assert_eq!(a.base, 1, "word 0 is the guard word");
        assert_eq!(b.base, 5);
        assert_eq!(m.size(), 7);
        assert_eq!(m.load(5), Ok(10));
        m.store(2, 7).unwrap();
        assert_eq!(m.slice(a), &[0, 7, 0, 0]);
        assert_eq!(m.array("b"), Some(b));
        assert_eq!(m.array("missing"), None);
    }

    #[test]
    fn no_segment_at_address_zero() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", 2);
        assert!(a.base_const() != 0);
        // The guard word is addressable (bounds-checked like any word) but
        // belongs to no segment.
        assert!(m.arrays().all(|(_, r)| r.base > 0));
        assert_eq!(m.load(0), Ok(0));
    }

    #[test]
    fn bounds_checking() {
        let mut m = MemoryImage::new();
        m.alloc("a", 2);
        assert!(m.load(3).is_err());
        assert!(m.load(-1).is_err());
        assert!(m.store(100, 0).is_err());
        assert!(m.fetch_add(-5, 1).is_err());
        assert_eq!(m.load(3), Err(MemError::OutOfBounds { addr: 3, size: 3 }));
    }

    #[test]
    fn fetch_add_accumulates() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", 1);
        m.fetch_add(a.base_const(), 5).unwrap();
        m.fetch_add(a.base_const(), -2).unwrap();
        assert_eq!(m.load(a.base_const()), Ok(3));
    }

    #[test]
    fn slice_mut_round_trip() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", 3);
        m.slice_mut(a).copy_from_slice(&[1, 2, 3]);
        assert_eq!(m.slice(a), &[1, 2, 3]);
    }
}
