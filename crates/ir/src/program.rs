//! The structured program representation (our analogue of UDIR).
//!
//! Programs are trees of *regions*: straight-line statements plus structured
//! `if` and `loop` constructs and direct calls. This is exactly the form the
//! paper's compiler consumes: loops and function bodies are the *concurrent
//! blocks* of Sec. III, and the structured form guarantees reducible control
//! flow (irreducible `goto`s are unrepresentable, matching the paper's
//! footnote 3).

use crate::types::{AluOp, FuncId, LoopId, Operand, Var};

/// A whole program: a set of functions and an entry point.
///
/// Built with [`crate::build::ProgramBuilder`]; validated with
/// [`crate::validate::validate`].
#[derive(Debug, Clone)]
pub struct Program {
    /// All functions; indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// The entry function (its params are the program arguments).
    pub entry: FuncId,
}

impl Program {
    /// Returns the function for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// The entry function.
    pub fn entry_func(&self) -> &Function {
        self.func(self.entry)
    }

    /// Total number of loops in the program (each is a concurrent block).
    pub fn loop_count(&self) -> usize {
        fn count(r: &Region) -> usize {
            r.stmts
                .iter()
                .map(|s| match s {
                    Stmt::Loop(l) => 1 + count(&l.pre) + count(&l.body),
                    Stmt::If(i) => count(&i.then_region) + count(&i.else_region),
                    _ => 0,
                })
                .sum()
        }
        self.funcs.iter().map(|f| count(&f.body)).sum()
    }
}

/// One function: a concurrent block with parameters and return values.
#[derive(Debug, Clone)]
pub struct Function {
    /// Diagnostic name; also used to address the block's tag space.
    pub name: String,
    /// Parameter variables, bound on entry.
    pub params: Vec<Var>,
    /// The body region.
    pub body: Region,
    /// Values returned to the caller, evaluated after `body`.
    pub returns: Vec<Operand>,
    /// Number of variables used by this function (vars are function-scoped).
    pub n_vars: u32,
}

/// A sequence of statements.
#[derive(Debug, Clone, Default)]
pub struct Region {
    /// Statements in program order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `dst = op(lhs, rhs)`. Unary ops ignore `rhs`.
    Op {
        /// Destination variable.
        dst: Var,
        /// The opcode.
        op: AluOp,
        /// First operand.
        lhs: Operand,
        /// Second operand (ignored by unary ops).
        rhs: Operand,
    },
    /// `dst = memory[addr]`.
    Load {
        /// Destination variable.
        dst: Var,
        /// Word address.
        addr: Operand,
    },
    /// `memory[addr] = value`.
    Store {
        /// Word address.
        addr: Operand,
        /// Value to store.
        value: Operand,
    },
    /// `memory[addr] += value`, atomically in one cycle.
    ///
    /// This models UDIR's conversion of potentially-conflicting
    /// read-modify-write accumulations into ordered memory operations
    /// (see DESIGN.md §2); it preserves the parallelism shape without
    /// reimplementing alias analysis.
    StoreAdd {
        /// Word address.
        addr: Operand,
        /// Value to add.
        value: Operand,
    },
    /// `dst = cond != 0 ? on_true : on_false` (if-conversion).
    Select {
        /// Destination variable.
        dst: Var,
        /// Condition.
        cond: Operand,
        /// Value when `cond != 0`.
        on_true: Operand,
        /// Value when `cond == 0`.
        on_false: Operand,
    },
    /// A structured conditional; lowered to steers + merges in dataflow.
    If(IfStmt),
    /// A structured loop; a concurrent block in TYR.
    Loop(LoopStmt),
    /// A direct call. The callee is a concurrent block in TYR.
    Call {
        /// The callee.
        func: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
        /// Destination variables for the return values.
        rets: Vec<Var>,
    },
}

/// A structured conditional.
///
/// Regions may contain arithmetic, memory operations, selects, and nested
/// `if`s — but no loops or calls (those are concurrent blocks, and
/// conditionally-entered blocks are out of scope for this reproduction; see
/// DESIGN.md). Values flowing out of the conditional are listed in `merges`.
#[derive(Debug, Clone)]
pub struct IfStmt {
    /// Branch condition (non-zero takes the `then` side).
    pub cond: Operand,
    /// Statements executed when `cond != 0`.
    pub then_region: Region,
    /// Statements executed when `cond == 0`.
    pub else_region: Region,
    /// `(dst, then_value, else_value)`: after the conditional, `dst` holds
    /// the value from whichever side executed.
    pub merges: Vec<(Var, Operand, Operand)>,
}

/// A structured while-loop — one *concurrent block*.
///
/// Per-iteration semantics (matching the steer-based dataflow loop of
/// Fig. 3b):
///
/// 1. Carried variables hold either the `init` operands (first iteration) or
///    the previous iteration's `next` values.
/// 2. The `pre` region runs (pure ops only — it also runs on the final,
///    test-only iteration).
/// 3. If `cond != 0`: `body` runs, `next` values are computed, and a new
///    iteration begins.
/// 4. Otherwise the loop exits and each `exits` operand (over carried/`pre`
///    variables) is bound in the parent scope.
#[derive(Debug, Clone)]
pub struct LoopStmt {
    /// Unique id, assigned by the builder.
    pub id: LoopId,
    /// Diagnostic label; also used to address the block's tag space.
    pub label: String,
    /// `(body-scoped var, init operand evaluated in the parent scope)`.
    pub carried: Vec<(Var, Operand)>,
    /// Pure per-iteration prologue (Op/Select only), e.g. the trip test.
    pub pre: Region,
    /// Continue while `cond != 0`; evaluated over carried + `pre` variables.
    pub cond: Operand,
    /// Loop body, executed only when `cond != 0`.
    pub body: Region,
    /// Next value for each carried variable (over carried/`pre`/body vars).
    pub next: Vec<Operand>,
    /// `(parent-scoped dst, operand over carried/`pre` vars)`.
    pub exits: Vec<(Var, Operand)>,
}

impl Stmt {
    /// Variables defined by this statement in the *enclosing* scope.
    pub fn defs(&self) -> Vec<Var> {
        match self {
            Stmt::Op { dst, .. } | Stmt::Load { dst, .. } | Stmt::Select { dst, .. } => vec![*dst],
            Stmt::Store { .. } | Stmt::StoreAdd { .. } => vec![],
            Stmt::If(i) => i.merges.iter().map(|(d, _, _)| *d).collect(),
            Stmt::Loop(l) => l.exits.iter().map(|(d, _)| *d).collect(),
            Stmt::Call { rets, .. } => rets.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::types::NO_OPERANDS;

    #[test]
    fn loop_count_counts_nested() {
        // main { loop A { loop B { } } loop C { } }
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("A", [0]);
        let c = f.lt(i, 2);
        f.begin_body(c);
        let [j] = f.begin_loop("B", [0]);
        let cb = f.lt(j, 2);
        f.begin_body(cb);
        let j2 = f.add(j, 1);
        f.end_loop([j2], NO_OPERANDS);
        let i2 = f.add(i, 1);
        f.end_loop([i2], NO_OPERANDS);
        let [k] = f.begin_loop("C", [0]);
        let cc = f.lt(k, 2);
        f.begin_body(cc);
        let k2 = f.add(k, 1);
        f.end_loop([k2], NO_OPERANDS);
        let p = pb.finish(f, NO_OPERANDS);
        assert_eq!(p.loop_count(), 3);
    }

    #[test]
    fn stmt_defs() {
        let s = Stmt::Op {
            dst: Var(1),
            op: AluOp::Add,
            lhs: Operand::Const(1),
            rhs: Operand::Const(2),
        };
        assert_eq!(s.defs(), vec![Var(1)]);
        let s = Stmt::Store { addr: Operand::Const(0), value: Operand::Const(0) };
        assert!(s.defs().is_empty());
        let s = Stmt::Call { func: FuncId(0), args: vec![], rets: vec![Var(2), Var(3)] };
        assert_eq!(s.defs(), vec![Var(2), Var(3)]);
    }
}
