//! Structured dataflow IR for the TYR reproduction — the role UDIR plays in
//! the paper (Sec. IV-C).
//!
//! Programs are built with the [`build`] DSL, statically checked with
//! [`validate`], and consumed by:
//!
//! * [`interp`] — the sequential reference interpreter (correctness oracle
//!   and the sequential von Neumann baseline of the evaluation);
//! * `tyr-dfg`'s lowering passes, which elaborate the structured form into
//!   per-architecture dataflow graphs (TYR's concurrent-block linkage, naïve
//!   unordered tagging, ordered FIFO dataflow).
//!
//! The IR's structural rules mirror the paper's assumptions:
//!
//! * **Concurrent blocks are DAGs.** Loop bodies and function bodies are
//!   straight-line/forward-branching code with statically-single-assigned
//!   variables.
//! * **Blocks communicate only through transfer points.** A loop body may
//!   reference *only* its carried variables (loop-invariant inputs are
//!   carried through, just as Fig. 10 passes block arguments), and function
//!   bodies only their parameters.
//! * **Control flow is reducible** by construction; the call graph must be
//!   acyclic (general recursion is transformed to loops + an explicit stack,
//!   as in Theorem 1).
//!
//! # Example
//!
//! ```
//! use tyr_ir::build::ProgramBuilder;
//! use tyr_ir::{interp, validate::validate, MemoryImage};
//!
//! let mut mem = MemoryImage::new();
//! let xs = mem.alloc_init("xs", &[3, 1, 4, 1, 5]);
//!
//! // Sum an array.
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.func("main", 0);
//! let [i, acc] = f.begin_loop("sum", [0, 0]);
//! let cont = f.lt(i, xs.len as i64);
//! f.begin_body(cont);
//! let addr = f.add(i, xs.base_const());
//! let x = f.load(addr);
//! let acc2 = f.add(acc, x);
//! let i2 = f.add(i, 1);
//! let [total] = f.end_loop([i2, acc2], [acc]);
//! let program = pb.finish(f, [total]);
//!
//! validate(&program)?;
//! let out = interp::run(&program, &mut mem, &[])?;
//! assert_eq!(out.returns, vec![14]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod inline;
pub mod interp;
pub mod memory;
pub mod pretty;
pub mod program;
pub mod types;
pub mod validate;

pub use memory::{ArrayRef, MemError, MemoryImage};
pub use program::{Function, IfStmt, LoopStmt, Program, Region, Stmt};
pub use types::{AluError, AluOp, FuncId, LoopId, Operand, Value, Var, NO_OPERANDS};
