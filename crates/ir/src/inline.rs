//! Call inlining.
//!
//! The ordered-dataflow lowering requires a single, call-free function:
//! ordered (FIFO-synchronized) machines cannot share one function body
//! between interleaved callers, so CGRA compilers flatten calls — we do the
//! same. The tagged lowerings do *not* need this pass; handling shared
//! function bodies via tags is exactly TYR's strength.

use std::collections::HashMap;

use crate::program::{Function, IfStmt, LoopStmt, Program, Region, Stmt};
use crate::types::{AluOp, FuncId, LoopId, Operand, Var};

/// Inlines every call, producing a program with a single (entry) function.
///
/// Loop labels are suffixed with `@<n>` on their second and later inlined
/// copies to keep labels unique. The input must be valid (acyclic call
/// graph); run [`crate::validate::validate`] first.
///
/// # Panics
///
/// Panics on malformed input (unknown callee, arity mismatch) — conditions
/// `validate` rejects.
pub fn inline_calls(program: &Program) -> Program {
    let mut ctx = Inliner {
        program,
        next_var: program.entry_func().n_vars,
        label_counts: HashMap::new(),
        next_loop: 0,
    };
    let entry = program.entry_func();
    let body = ctx.inline_region(&entry.body, &identity_map(entry));
    let mut func = Function {
        name: entry.name.clone(),
        params: entry.params.clone(),
        body,
        returns: entry.returns.clone(),
        n_vars: ctx.next_var,
    };
    renumber(&mut func.body, &mut 0);
    Program { funcs: vec![func], entry: FuncId(0) }
}

fn identity_map(f: &Function) -> HashMap<Var, Operand> {
    // Entry vars map to themselves; fresh vars are appended past n_vars.
    (0..f.n_vars).map(|i| (Var(i), Operand::Var(Var(i)))).collect()
}

fn renumber(region: &mut Region, next: &mut u32) {
    for stmt in &mut region.stmts {
        match stmt {
            Stmt::Loop(l) => {
                l.id = LoopId(*next);
                *next += 1;
                renumber(&mut l.pre, next);
                renumber(&mut l.body, next);
            }
            Stmt::If(i) => {
                renumber(&mut i.then_region, next);
                renumber(&mut i.else_region, next);
            }
            _ => {}
        }
    }
}

struct Inliner<'a> {
    program: &'a Program,
    next_var: u32,
    label_counts: HashMap<String, u32>,
    next_loop: u32,
}

impl<'a> Inliner<'a> {
    fn fresh(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    fn fresh_label(&mut self, base: &str) -> String {
        let n = self.label_counts.entry(base.to_string()).or_insert(0);
        *n += 1;
        if *n == 1 {
            base.to_string()
        } else {
            format!("{base}@{}", *n - 1)
        }
    }

    fn map_operand(&self, map: &HashMap<Var, Operand>, o: Operand) -> Operand {
        match o {
            Operand::Var(v) => {
                *map.get(&v).unwrap_or_else(|| panic!("unmapped {v} during inlining"))
            }
            c => c,
        }
    }

    fn map_def(&mut self, map: &mut HashMap<Var, Operand>, v: Var) -> Var {
        // Reuse the existing mapping if this var already maps to itself
        // (entry function vars); otherwise allocate a fresh var.
        if let Some(Operand::Var(w)) = map.get(&v) {
            if *w == v {
                return v;
            }
        }
        let w = self.fresh();
        map.insert(v, Operand::Var(w));
        w
    }

    fn inline_region(&mut self, region: &Region, outer_map: &HashMap<Var, Operand>) -> Region {
        let mut map = outer_map.clone();
        let mut out = Vec::with_capacity(region.stmts.len());
        for stmt in &region.stmts {
            self.inline_stmt(stmt, &mut map, &mut out);
        }
        Region { stmts: out }
    }

    fn inline_stmt(&mut self, stmt: &Stmt, map: &mut HashMap<Var, Operand>, out: &mut Vec<Stmt>) {
        match stmt {
            Stmt::Op { dst, op, lhs, rhs } => {
                let lhs = self.map_operand(map, *lhs);
                let rhs = self.map_operand(map, *rhs);
                let dst = self.map_def(map, *dst);
                out.push(Stmt::Op { dst, op: *op, lhs, rhs });
            }
            Stmt::Load { dst, addr } => {
                let addr = self.map_operand(map, *addr);
                let dst = self.map_def(map, *dst);
                out.push(Stmt::Load { dst, addr });
            }
            Stmt::Store { addr, value } => {
                out.push(Stmt::Store {
                    addr: self.map_operand(map, *addr),
                    value: self.map_operand(map, *value),
                });
            }
            Stmt::StoreAdd { addr, value } => {
                out.push(Stmt::StoreAdd {
                    addr: self.map_operand(map, *addr),
                    value: self.map_operand(map, *value),
                });
            }
            Stmt::Select { dst, cond, on_true, on_false } => {
                let cond = self.map_operand(map, *cond);
                let on_true = self.map_operand(map, *on_true);
                let on_false = self.map_operand(map, *on_false);
                let dst = self.map_def(map, *dst);
                out.push(Stmt::Select { dst, cond, on_true, on_false });
            }
            Stmt::If(i) => {
                let cond = self.map_operand(map, i.cond);
                let mut then_map = map.clone();
                let then_region = self.inline_region_with(&i.then_region, &mut then_map);
                let mut else_map = map.clone();
                let else_region = self.inline_region_with(&i.else_region, &mut else_map);
                let merges = i
                    .merges
                    .iter()
                    .map(|&(d, t, e)| {
                        let t = self.map_operand(&then_map, t);
                        let e = self.map_operand(&else_map, e);
                        (self.map_def(map, d), t, e)
                    })
                    .collect();
                out.push(Stmt::If(IfStmt { cond, then_region, else_region, merges }));
            }
            Stmt::Loop(l) => {
                let carried: Vec<(Var, Operand)> = l
                    .carried
                    .iter()
                    .map(|&(v, init)| {
                        let init = self.map_operand(map, init);
                        (v, init)
                    })
                    .collect();
                let mut inner_map = map.clone();
                let carried: Vec<(Var, Operand)> = carried
                    .into_iter()
                    .map(|(v, init)| (self.map_def(&mut inner_map, v), init))
                    .collect();
                let pre = self.inline_region_with(&l.pre, &mut inner_map);
                let cond = self.map_operand(&inner_map, l.cond);
                let body = self.inline_region_with(&l.body, &mut inner_map);
                let next = l.next.iter().map(|&n| self.map_operand(&inner_map, n)).collect();
                let exits = l
                    .exits
                    .iter()
                    .map(|&(d, src)| {
                        let src = self.map_operand(&inner_map, src);
                        (self.map_def(map, d), src)
                    })
                    .collect();
                let label = self.fresh_label(&l.label);
                let id = LoopId(self.next_loop);
                self.next_loop += 1;
                out.push(Stmt::Loop(LoopStmt { id, label, carried, pre, cond, body, next, exits }));
            }
            Stmt::Call { func, args, rets } => {
                let callee = self.program.func(*func);
                let argv: Vec<Operand> = args.iter().map(|&a| self.map_operand(map, a)).collect();
                assert_eq!(argv.len(), callee.params.len(), "call arity to '{}'", callee.name);
                // Build the callee's substitution: params -> caller operands.
                let mut callee_map: HashMap<Var, Operand> = HashMap::new();
                for (&p, &a) in callee.params.iter().zip(&argv) {
                    callee_map.insert(p, a);
                }
                for s in &callee.body.stmts {
                    self.inline_stmt(s, &mut callee_map, out);
                }
                // Bind return values via moves.
                assert_eq!(rets.len(), callee.returns.len(), "return arity from '{}'", callee.name);
                for (&d, &r) in rets.iter().zip(&callee.returns) {
                    let src = self.map_operand(&callee_map, r);
                    let dst = self.map_def(map, d);
                    out.push(Stmt::Op { dst, op: AluOp::Mov, lhs: src, rhs: Operand::Const(0) });
                }
            }
        }
    }

    fn inline_region_with(&mut self, region: &Region, map: &mut HashMap<Var, Operand>) -> Region {
        let mut out = Vec::with_capacity(region.stmts.len());
        for stmt in &region.stmts {
            self.inline_stmt(stmt, map, &mut out);
        }
        Region { stmts: out }
    }
}

/// Returns `true` if the program contains no [`Stmt::Call`].
pub fn is_call_free(program: &Program) -> bool {
    fn region_call_free(r: &Region) -> bool {
        r.stmts.iter().all(|s| match s {
            Stmt::Call { .. } => false,
            Stmt::Loop(l) => region_call_free(&l.pre) && region_call_free(&l.body),
            Stmt::If(i) => region_call_free(&i.then_region) && region_call_free(&i.else_region),
            _ => true,
        })
    }
    program.funcs.iter().all(|f| region_call_free(&f.body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::validate::validate;
    use crate::{interp, MemoryImage};

    fn call_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut tri = pb.func("triangle", 1);
        let n = tri.param(0);
        let [i, acc, nn] = tri.begin_loop("tri_loop", [0.into(), 0.into(), n]);
        let c = tri.le(i, nn);
        tri.begin_body(c);
        let acc2 = tri.add(acc, i);
        let i2 = tri.add(i, 1);
        let [sum] = tri.end_loop([i2, acc2, nn], [acc]);
        let tid = tri.id();
        pb.define(tri, [sum]);

        let mut main = pb.func("main", 1);
        let x = main.param(0);
        let a = main.call(tid, &[x], 1);
        let twice = main.mul(x, 2);
        let b = main.call(tid, &[twice], 1);
        let total = main.add(a[0], b[0]);
        pb.finish(main, [total])
    }

    #[test]
    fn inlined_program_is_call_free_and_valid() {
        let p = call_program();
        assert!(!is_call_free(&p));
        validate(&p).unwrap();
        let q = inline_calls(&p);
        assert!(is_call_free(&q));
        assert_eq!(q.funcs.len(), 1);
        validate(&q).unwrap();
    }

    #[test]
    fn inlined_program_computes_same_result() {
        let p = call_program();
        let q = inline_calls(&p);
        for arg in [0i64, 1, 5, 13] {
            let mut m1 = MemoryImage::new();
            let mut m2 = MemoryImage::new();
            let r1 = interp::run(&p, &mut m1, &[arg]).unwrap();
            let r2 = interp::run(&q, &mut m2, &[arg]).unwrap();
            assert_eq!(r1.returns, r2.returns, "arg={arg}");
        }
    }

    #[test]
    fn duplicate_labels_are_disambiguated() {
        let p = call_program();
        let q = inline_calls(&p);
        let mut labels = Vec::new();
        fn collect(r: &Region, out: &mut Vec<String>) {
            for s in &r.stmts {
                if let Stmt::Loop(l) = s {
                    out.push(l.label.clone());
                    collect(&l.pre, out);
                    collect(&l.body, out);
                }
            }
        }
        collect(&q.entry_func().body, &mut labels);
        assert_eq!(labels.len(), 2);
        assert_ne!(labels[0], labels[1]);
        assert!(labels.iter().any(|l| l == "tri_loop"));
        assert!(labels.iter().any(|l| l == "tri_loop@1"));
    }

    #[test]
    fn inline_of_call_free_program_is_identity_semantics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let x = f.param(0);
        let y = f.mul(x, x);
        let p = pb.finish(f, [y]);
        let q = inline_calls(&p);
        let mut m = MemoryImage::new();
        assert_eq!(interp::run(&q, &mut m, &[9]).unwrap().returns, vec![81]);
    }
}
