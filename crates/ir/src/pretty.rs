//! Human-readable printing of structured programs, for debugging lowering
//! passes and for golden tests.

use std::fmt::Write as _;

use crate::program::{Program, Region, Stmt};

/// Renders the whole program as indented pseudo-code.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, f) in program.funcs.iter().enumerate() {
        let entry = if program.entry.0 as usize == i { " (entry)" } else { "" };
        let params: Vec<String> = f.params.iter().map(|p| p.to_string()).collect();
        let _ = writeln!(out, "func {}({}){}:", f.name, params.join(", "), entry);
        print_region(&f.body, 1, &mut out);
        let rets: Vec<String> = f.returns.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(out, "  return {}", rets.join(", "));
    }
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn print_region(region: &Region, depth: usize, out: &mut String) {
    for stmt in &region.stmts {
        print_stmt(stmt, depth, out);
    }
}

fn print_stmt(stmt: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match stmt {
        Stmt::Op { dst, op, lhs, rhs } => {
            if op.is_unary() {
                let _ = writeln!(out, "{dst} = {op} {lhs}");
            } else {
                let _ = writeln!(out, "{dst} = {op} {lhs}, {rhs}");
            }
        }
        Stmt::Load { dst, addr } => {
            let _ = writeln!(out, "{dst} = load [{addr}]");
        }
        Stmt::Store { addr, value } => {
            let _ = writeln!(out, "store [{addr}] = {value}");
        }
        Stmt::StoreAdd { addr, value } => {
            let _ = writeln!(out, "store_add [{addr}] += {value}");
        }
        Stmt::Select { dst, cond, on_true, on_false } => {
            let _ = writeln!(out, "{dst} = select {cond} ? {on_true} : {on_false}");
        }
        Stmt::If(i) => {
            let _ = writeln!(out, "if {}:", i.cond);
            print_region(&i.then_region, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "else:");
            print_region(&i.else_region, depth + 1, out);
            for (d, t, e) in &i.merges {
                indent(depth, out);
                let _ = writeln!(out, "{d} = merge {t} | {e}");
            }
        }
        Stmt::Loop(l) => {
            let carried: Vec<String> =
                l.carried.iter().map(|(v, init)| format!("{v}={init}")).collect();
            let _ = writeln!(out, "loop '{}' [{}] ({}):", l.label, l.id, carried.join(", "));
            if !l.pre.stmts.is_empty() {
                indent(depth + 1, out);
                let _ = writeln!(out, "pre:");
                print_region(&l.pre, depth + 2, out);
            }
            indent(depth + 1, out);
            let _ = writeln!(out, "while {}:", l.cond);
            print_region(&l.body, depth + 2, out);
            let nexts: Vec<String> = l.next.iter().map(|n| n.to_string()).collect();
            indent(depth + 1, out);
            let _ = writeln!(out, "next: {}", nexts.join(", "));
            for (d, src) in &l.exits {
                indent(depth + 1, out);
                let _ = writeln!(out, "exit: {d} = {src}");
            }
        }
        Stmt::Call { func, args, rets } => {
            let argl: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let retl: Vec<String> = rets.iter().map(|r| r.to_string()).collect();
            let _ = writeln!(out, "{} = call {}({})", retl.join(", "), func, argl.join(", "));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;

    #[test]
    fn prints_loop_structure() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, nn] = f.begin_loop("count", [0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        let [last] = f.end_loop([i2, nn], [i]);
        let p = pb.finish(f, [last]);
        let s = print_program(&p);
        assert!(s.contains("func main(v0) (entry):"), "{s}");
        assert!(s.contains("loop 'count' [loop0]"), "{s}");
        assert!(s.contains("while "), "{s}");
        assert!(s.contains("return "), "{s}");
    }

    #[test]
    fn prints_all_statement_kinds() {
        let mut pb = ProgramBuilder::new();
        let mut g = pb.func("helper", 1);
        let a = g.param(0);
        let r = g.not_(a);
        let gid = g.id();
        pb.define(g, [r]);

        let mut f = pb.func("main", 0);
        let x = f.load(0);
        let s = f.select(x, 1, 2);
        f.store(0, s);
        f.store_add(1, s);
        let c = f.gt(x, 0);
        f.begin_if(c);
        let t = f.add(x, 1);
        f.begin_else();
        let e = f.sub(x, 1);
        let [m] = f.end_if([(t, e)]);
        let rv = f.call(gid, &[m], 1);
        let p = pb.finish(f, [rv[0]]);
        let out = print_program(&p);
        for needle in
            ["load", "select", "store [", "store_add", "if ", "else:", "merge", "call f0", "not"]
        {
            assert!(out.contains(needle), "missing '{needle}' in:\n{out}");
        }
    }
}
