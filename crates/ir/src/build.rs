//! Builder DSL for constructing structured programs.
//!
//! This is the front-end of the reproduction — the role played by
//! C → LLVM → UDIR in the paper. Kernels are written against
//! [`ProgramBuilder`]/[`FuncBuilder`] and produce exactly the structured
//! dataflow form the paper's lowering passes consume.
//!
//! # Example: sum of `0..n`
//!
//! ```
//! use tyr_ir::build::ProgramBuilder;
//! use tyr_ir::{interp, MemoryImage};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.func("main", 1);
//! let n = f.param(0);
//! // Loop-invariant values (here `n`) are carried into the loop, exactly as
//! // the paper's transfer points pass a block's arguments (Fig. 10).
//! let [i, acc, n] = f.begin_loop("sum", [0.into(), 0.into(), n]);
//! let cont = f.lt(i, n);
//! f.begin_body(cont);
//! let acc2 = f.add(acc, i);
//! let i2 = f.add(i, 1);
//! let [total] = f.end_loop([i2, acc2, n], [acc]);
//! let program = pb.finish(f, [total]);
//!
//! let mut mem = MemoryImage::new();
//! let out = interp::run(&program, &mut mem, &[10]).unwrap();
//! assert_eq!(out.returns, vec![45]);
//! ```
//!
//! # Panics
//!
//! Builder methods panic on structural misuse (mismatched
//! `begin_loop`/`end_loop`, `begin_body` outside a loop prologue, etc.).
//! The builder is a development tool; misuse is a programming error, not a
//! runtime condition.

use crate::program::{Function, IfStmt, LoopStmt, Program, Region, Stmt};
use crate::types::{AluOp, FuncId, LoopId, Operand, Var};

/// Builds a [`Program`] from one or more functions.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    names: Vec<String>,
    n_params: Vec<usize>,
    defined: Vec<Option<Function>>,
    next_loop: u32,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a function without defining it, for forward references
    /// (e.g. mutual call targets in a DAG). Define it later with a
    /// [`FuncBuilder`] obtained from [`ProgramBuilder::func_for`].
    pub fn declare(&mut self, name: &str, n_params: usize) -> FuncId {
        let id = FuncId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.n_params.push(n_params);
        self.defined.push(None);
        id
    }

    /// Declares a function and returns a builder for its body.
    pub fn func(&mut self, name: &str, n_params: usize) -> FuncBuilder {
        let id = self.declare(name, n_params);
        self.func_for(id)
    }

    /// Returns a body builder for a previously [`declare`](Self::declare)d
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared or is already defined.
    pub fn func_for(&mut self, id: FuncId) -> FuncBuilder {
        let idx = id.0 as usize;
        assert!(idx < self.names.len(), "function {id} was never declared");
        assert!(self.defined[idx].is_none(), "function {id} is already defined");
        let n_params = self.n_params[idx];
        FuncBuilder {
            id,
            name: self.names[idx].clone(),
            params: (0..n_params as u32).map(Var).collect(),
            next_var: n_params as u32,
            frames: vec![Frame { kind: FrameKind::Top, stmts: Vec::new() }],
        }
    }

    /// Installs a finished function body.
    ///
    /// # Panics
    ///
    /// Panics if the builder has unclosed loops/ifs, or the function is
    /// already defined.
    pub fn define<const R: usize>(&mut self, fb: FuncBuilder, returns: [Operand; R]) {
        self.define_vec(fb, returns.to_vec());
    }

    /// [`define`](Self::define) with a dynamic return arity (used by
    /// front-ends whose arities are only known at run time).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`define`](Self::define).
    pub fn define_vec(&mut self, mut fb: FuncBuilder, returns: Vec<Operand>) {
        assert_eq!(fb.frames.len(), 1, "function '{}' has unclosed loop or if", fb.name);
        let frame = fb.frames.pop().expect("top frame");
        let idx = fb.id.0 as usize;
        assert!(self.defined[idx].is_none(), "function '{}' is already defined", fb.name);
        let mut func = Function {
            name: fb.name,
            params: fb.params,
            body: Region { stmts: frame.stmts },
            returns,
            n_vars: fb.next_var,
        };
        renumber_loops(&mut func.body, &mut self.next_loop);
        self.defined[idx] = Some(func);
    }

    /// Finishes the whole program: defines `fb` and builds.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`define`](Self::define) and
    /// [`build`](Self::build).
    pub fn finish<const R: usize>(mut self, fb: FuncBuilder, returns: [Operand; R]) -> Program {
        self.define(fb, returns);
        self.build()
    }

    /// Builds the program. The entry point is the function named `main`, or
    /// the first function if none is named `main`.
    ///
    /// # Panics
    ///
    /// Panics if any declared function is undefined, or no function exists.
    pub fn build(self) -> Program {
        assert!(!self.names.is_empty(), "program has no functions");
        let entry = self
            .names
            .iter()
            .position(|n| n == "main")
            .map(|i| FuncId(i as u32))
            .unwrap_or(FuncId(0));
        let funcs: Vec<Function> = self
            .defined
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                f.unwrap_or_else(|| {
                    panic!("function '{}' declared but never defined", self.names[i])
                })
            })
            .collect();
        Program { funcs, entry }
    }
}

/// Assigns program-wide sequential [`LoopId`]s in definition order.
fn renumber_loops(region: &mut Region, next: &mut u32) {
    for stmt in &mut region.stmts {
        match stmt {
            Stmt::Loop(l) => {
                l.id = LoopId(*next);
                *next += 1;
                renumber_loops(&mut l.pre, next);
                renumber_loops(&mut l.body, next);
            }
            Stmt::If(i) => {
                renumber_loops(&mut i.then_region, next);
                renumber_loops(&mut i.else_region, next);
            }
            _ => {}
        }
    }
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    stmts: Vec<Stmt>,
}

#[derive(Debug)]
enum FrameKind {
    Top,
    /// Between `begin_loop` and `begin_body`: building the pure prologue.
    LoopPre {
        label: String,
        carried: Vec<(Var, Operand)>,
    },
    /// Between `begin_body` and `end_loop`.
    LoopBody {
        label: String,
        carried: Vec<(Var, Operand)>,
        pre: Region,
        cond: Operand,
    },
    /// Between `begin_if` and `begin_else`.
    IfThen {
        cond: Operand,
    },
    /// Between `begin_else` and `end_if`.
    IfElse {
        cond: Operand,
        then_region: Region,
    },
}

/// Builds one function body. Obtain from [`ProgramBuilder::func`].
#[derive(Debug)]
pub struct FuncBuilder {
    id: FuncId,
    name: String,
    params: Vec<Var>,
    next_var: u32,
    frames: Vec<Frame>,
}

macro_rules! binop {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        $(
            #[$doc]
            pub fn $name(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Operand {
                self.op(AluOp::$op, lhs, rhs)
            }
        )*
    };
}

macro_rules! unop {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        $(
            #[$doc]
            pub fn $name(&mut self, a: impl Into<Operand>) -> Operand {
                self.op(AluOp::$op, a, Operand::Const(0))
            }
        )*
    };
}

impl FuncBuilder {
    /// The function's id (usable as a call target).
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The `i`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Operand {
        Operand::Var(self.params[i])
    }

    fn fresh(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    fn push(&mut self, stmt: Stmt) {
        self.frames.last_mut().expect("builder has no open frame").stmts.push(stmt);
    }

    /// Emits `dst = op(lhs, rhs)` and returns `dst`.
    pub fn op(&mut self, op: AluOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Operand {
        let dst = self.fresh();
        self.push(Stmt::Op { dst, op, lhs: lhs.into(), rhs: rhs.into() });
        Operand::Var(dst)
    }

    binop! {
        /// Wrapping addition.
        add => Add,
        /// Wrapping subtraction.
        sub => Sub,
        /// Wrapping multiplication.
        mul => Mul,
        /// Signed division.
        div => Div,
        /// Signed remainder.
        rem => Rem,
        /// Bitwise and.
        and_ => And,
        /// Bitwise or.
        or_ => Or,
        /// Bitwise xor.
        xor_ => Xor,
        /// Left shift.
        shl => Shl,
        /// Arithmetic right shift.
        shr => Shr,
        /// `lhs < rhs` (0/1).
        lt => Lt,
        /// `lhs <= rhs` (0/1).
        le => Le,
        /// `lhs > rhs` (0/1).
        gt => Gt,
        /// `lhs >= rhs` (0/1).
        ge => Ge,
        /// `lhs == rhs` (0/1).
        eq => Eq,
        /// `lhs != rhs` (0/1).
        ne => Ne,
        /// Signed minimum.
        min => Min,
        /// Signed maximum.
        max => Max,
    }

    unop! {
        /// Bitwise not.
        not_ => Not,
        /// Arithmetic negation.
        neg => Neg,
        /// Copy.
        mov => Mov,
    }

    /// Emits a load from word address `addr`.
    pub fn load(&mut self, addr: impl Into<Operand>) -> Operand {
        let dst = self.fresh();
        self.push(Stmt::Load { dst, addr: addr.into() });
        Operand::Var(dst)
    }

    /// Emits a store of `value` to word address `addr`.
    pub fn store(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>) {
        self.push(Stmt::Store { addr: addr.into(), value: value.into() });
    }

    /// Emits an atomic `memory[addr] += value`.
    pub fn store_add(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>) {
        self.push(Stmt::StoreAdd { addr: addr.into(), value: value.into() });
    }

    /// Emits `cond != 0 ? on_true : on_false`.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        on_true: impl Into<Operand>,
        on_false: impl Into<Operand>,
    ) -> Operand {
        let dst = self.fresh();
        self.push(Stmt::Select {
            dst,
            cond: cond.into(),
            on_true: on_true.into(),
            on_false: on_false.into(),
        });
        Operand::Var(dst)
    }

    /// Opens a loop with `N` carried variables initialized to `inits`,
    /// returning the carried variables. Statements emitted until
    /// [`begin_body`](Self::begin_body) form the pure prologue (`pre`).
    pub fn begin_loop<const N: usize>(
        &mut self,
        label: &str,
        inits: [impl Into<Operand>; N],
    ) -> [Operand; N] {
        self.begin_loop_vec(label, inits.into_iter().map(Into::into).collect())
            .try_into()
            .expect("carried arity")
    }

    /// [`begin_loop`](Self::begin_loop) with dynamic arity.
    pub fn begin_loop_vec(&mut self, label: &str, inits: Vec<Operand>) -> Vec<Operand> {
        let carried: Vec<(Var, Operand)> =
            inits.into_iter().map(|init| (self.fresh(), init)).collect();
        let out: Vec<Operand> = carried.iter().map(|(v, _)| Operand::Var(*v)).collect();
        self.frames.push(Frame {
            kind: FrameKind::LoopPre { label: label.to_string(), carried },
            stmts: Vec::new(),
        });
        out
    }

    /// Ends the loop prologue and opens the loop body; the loop continues
    /// while `cond != 0`.
    ///
    /// # Panics
    ///
    /// Panics if not directly inside a loop prologue.
    pub fn begin_body(&mut self, cond: impl Into<Operand>) {
        let frame = self.frames.pop().expect("builder has no open frame");
        match frame.kind {
            FrameKind::LoopPre { label, carried } => {
                self.frames.push(Frame {
                    kind: FrameKind::LoopBody {
                        label,
                        carried,
                        pre: Region { stmts: frame.stmts },
                        cond: cond.into(),
                    },
                    stmts: Vec::new(),
                });
            }
            _ => panic!("begin_body called outside a loop prologue"),
        }
    }

    /// Closes a loop: `next` are the next-iteration values of the carried
    /// variables (same order as `begin_loop`), `exits` are values exported to
    /// the parent scope (over carried/`pre` variables). Returns the exported
    /// values as parent-scope variables.
    ///
    /// # Panics
    ///
    /// Panics if not directly inside a loop body, or if `next` does not match
    /// the carried-variable count.
    pub fn end_loop<const N: usize, const M: usize>(
        &mut self,
        next: [impl Into<Operand>; N],
        exits: [impl Into<Operand>; M],
    ) -> [Operand; M] {
        self.end_loop_vec(
            next.into_iter().map(Into::into).collect(),
            exits.into_iter().map(Into::into).collect(),
        )
        .try_into()
        .expect("exit arity")
    }

    /// [`end_loop`](Self::end_loop) with dynamic arity.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`end_loop`](Self::end_loop).
    pub fn end_loop_vec(&mut self, next: Vec<Operand>, exits: Vec<Operand>) -> Vec<Operand> {
        let frame = self.frames.pop().expect("builder has no open frame");
        match frame.kind {
            FrameKind::LoopBody { label, carried, pre, cond } => {
                assert_eq!(
                    next.len(),
                    carried.len(),
                    "loop '{label}': next arity != carried arity"
                );
                let exit_pairs: Vec<(Var, Operand)> =
                    exits.into_iter().map(|e| (self.fresh(), e)).collect();
                let out: Vec<Operand> = exit_pairs.iter().map(|(v, _)| Operand::Var(*v)).collect();
                self.push(Stmt::Loop(LoopStmt {
                    id: LoopId(u32::MAX), // renumbered at define time
                    label,
                    carried,
                    pre,
                    cond,
                    body: Region { stmts: frame.stmts },
                    next,
                    exits: exit_pairs,
                }));
                out
            }
            _ => panic!("end_loop called outside a loop body (missing begin_body?)"),
        }
    }

    /// Opens the `then` side of a conditional.
    pub fn begin_if(&mut self, cond: impl Into<Operand>) {
        self.frames
            .push(Frame { kind: FrameKind::IfThen { cond: cond.into() }, stmts: Vec::new() });
    }

    /// Switches from the `then` side to the `else` side.
    ///
    /// # Panics
    ///
    /// Panics if not directly inside a `then` region.
    pub fn begin_else(&mut self) {
        let frame = self.frames.pop().expect("builder has no open frame");
        match frame.kind {
            FrameKind::IfThen { cond } => {
                self.frames.push(Frame {
                    kind: FrameKind::IfElse { cond, then_region: Region { stmts: frame.stmts } },
                    stmts: Vec::new(),
                });
            }
            _ => panic!("begin_else called outside an if-then region"),
        }
    }

    /// Closes a conditional. Each `(then_value, else_value)` pair merges into
    /// a fresh parent-scope variable, returned in order.
    ///
    /// # Panics
    ///
    /// Panics if not directly inside an `else` region (a conditional without
    /// an `else` still requires an empty one: `begin_else(); end_if(..)`).
    pub fn end_if<const M: usize>(&mut self, merges: [(Operand, Operand); M]) -> [Operand; M] {
        self.end_if_vec(merges.to_vec()).try_into().expect("merge arity")
    }

    /// [`end_if`](Self::end_if) with dynamic arity.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`end_if`](Self::end_if).
    pub fn end_if_vec(&mut self, merges: Vec<(Operand, Operand)>) -> Vec<Operand> {
        let frame = self.frames.pop().expect("builder has no open frame");
        match frame.kind {
            FrameKind::IfElse { cond, then_region } => {
                let merge_triples: Vec<(Var, Operand, Operand)> =
                    merges.into_iter().map(|(t, e)| (self.fresh(), t, e)).collect();
                let out: Vec<Operand> =
                    merge_triples.iter().map(|(v, _, _)| Operand::Var(*v)).collect();
                self.push(Stmt::If(IfStmt {
                    cond,
                    then_region,
                    else_region: Region { stmts: frame.stmts },
                    merges: merge_triples,
                }));
                out
            }
            _ => panic!("end_if called outside an if-else region (missing begin_else?)"),
        }
    }

    /// Emits a direct call returning `n_rets` values.
    pub fn call(&mut self, func: FuncId, args: &[Operand], n_rets: usize) -> Vec<Operand> {
        let rets: Vec<Var> = (0..n_rets).map(|_| self.fresh()).collect();
        let out = rets.iter().map(|v| Operand::Var(*v)).collect();
        self.push(Stmt::Call { func, args: args.to_vec(), rets });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NO_OPERANDS;
    use crate::{interp, MemoryImage};

    #[test]
    fn straight_line_function() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 2);
        let a = f.param(0);
        let b = f.param(1);
        let s = f.add(a, b);
        let d = f.mul(s, 10);
        let p = pb.finish(f, [d]);
        let mut mem = MemoryImage::new();
        let out = interp::run(&p, &mut mem, &[3, 4]).unwrap();
        assert_eq!(out.returns, vec![70]);
    }

    #[test]
    fn zero_trip_loop() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, n] = f.begin_loop("l", [0.into(), 100.into(), n]);
        let c = f.lt(i, n);
        f.begin_body(c);
        let acc2 = f.add(acc, 1);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2, n], [acc]);
        let p = pb.finish(f, [out]);
        let mut mem = MemoryImage::new();
        // n = 0: body never runs, exit sees the init value.
        assert_eq!(interp::run(&p, &mut mem, &[0]).unwrap().returns, vec![100]);
        assert_eq!(interp::run(&p, &mut mem, &[5]).unwrap().returns, vec![105]);
    }

    #[test]
    fn if_else_merges() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let x = f.param(0);
        let c = f.gt(x, 0);
        f.begin_if(c);
        let t = f.mul(x, 2);
        f.begin_else();
        let e = f.neg(x);
        let [y] = f.end_if([(t, e)]);
        let p = pb.finish(f, [y]);
        let mut mem = MemoryImage::new();
        assert_eq!(interp::run(&p, &mut mem, &[7]).unwrap().returns, vec![14]);
        assert_eq!(interp::run(&p, &mut mem, &[-3]).unwrap().returns, vec![3]);
    }

    #[test]
    fn call_between_functions() {
        let mut pb = ProgramBuilder::new();
        let mut sq = pb.func("square", 1);
        let x = sq.param(0);
        let xx = sq.mul(x, x);
        let sq_id = sq.id();
        pb.define(sq, [xx]);

        let mut main = pb.func("main", 1);
        let a = main.param(0);
        let r = main.call(sq_id, &[a], 1);
        let r2 = main.add(r[0], 1);
        let p = pb.finish(main, [r2]);
        assert_eq!(p.entry_func().name, "main");
        let mut mem = MemoryImage::new();
        assert_eq!(interp::run(&p, &mut mem, &[6]).unwrap().returns, vec![37]);
    }

    #[test]
    fn loop_ids_are_renumbered_sequentially() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("outer", [0]);
        let c = f.lt(i, 1);
        f.begin_body(c);
        let [j] = f.begin_loop("inner", [0]);
        let cj = f.lt(j, 1);
        f.begin_body(cj);
        let j2 = f.add(j, 1);
        f.end_loop([j2], NO_OPERANDS);
        let i2 = f.add(i, 1);
        f.end_loop([i2], NO_OPERANDS);
        let p = pb.finish(f, NO_OPERANDS);
        // outer gets id 0, inner id 1 (definition order).
        match &p.entry_func().body.stmts[0] {
            Stmt::Loop(l) => {
                assert_eq!(l.id, LoopId(0));
                assert_eq!(l.label, "outer");
                match &l.body.stmts[0] {
                    Stmt::Loop(inner) => assert_eq!(inner.id, LoopId(1)),
                    other => panic!("expected inner loop, got {other:?}"),
                }
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn unclosed_loop_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [_i] = f.begin_loop("l", [0]);
        let _ = pb.finish(f, NO_OPERANDS);
    }

    #[test]
    #[should_panic(expected = "outside a loop prologue")]
    fn begin_body_at_top_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        f.begin_body(1);
        let _ = pb.finish(f, NO_OPERANDS);
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_function_panics() {
        let mut pb = ProgramBuilder::new();
        let _callee = pb.declare("callee", 1);
        let mut f = pb.func("main", 0);
        let r = f.add(1, 2);
        pb.define(f, [r]);
        let _ = pb.build();
    }
}

#[cfg(test)]
mod vec_api_tests {
    use super::*;
    use crate::types::NO_OPERANDS;
    use crate::{interp, MemoryImage};

    #[test]
    fn dynamic_arity_loop_matches_array_api() {
        // Build the same accumulator loop through both APIs; identical
        // semantics expected.
        let build = |dynamic: bool| -> Program {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.func("main", 1);
            let n = f.param(0);
            if dynamic {
                let carried = f.begin_loop_vec("l", vec![Operand::Const(0), Operand::Const(0), n]);
                let (i, acc, nn) = (carried[0], carried[1], carried[2]);
                let c = f.lt(i, nn);
                f.begin_body(c);
                let acc2 = f.add(acc, i);
                let i2 = f.add(i, 1);
                let outs = f.end_loop_vec(vec![i2, acc2, nn], vec![acc]);
                pb.finish(f, [outs[0]])
            } else {
                let [i, acc, nn] = f.begin_loop("l", [0.into(), 0.into(), n]);
                let c = f.lt(i, nn);
                f.begin_body(c);
                let acc2 = f.add(acc, i);
                let i2 = f.add(i, 1);
                let [out] = f.end_loop([i2, acc2, nn], [acc]);
                pb.finish(f, [out])
            }
        };
        for arg in [0i64, 1, 13] {
            let mut m1 = MemoryImage::new();
            let mut m2 = MemoryImage::new();
            let r1 = interp::run(&build(true), &mut m1, &[arg]).unwrap();
            let r2 = interp::run(&build(false), &mut m2, &[arg]).unwrap();
            assert_eq!(r1.returns, r2.returns);
            assert_eq!(r1.dyn_instrs, r2.dyn_instrs);
        }
    }

    #[test]
    fn dynamic_arity_if_and_define() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let x = f.param(0);
        let c = f.gt(x, 0);
        f.begin_if(c);
        let t = f.add(x, 1);
        f.begin_else();
        let e = f.sub(x, 1);
        let merged = f.end_if_vec(vec![(t, e), (t, e)]);
        pb.define_vec(f, merged.clone());
        let p = pb.build();
        let mut mem = MemoryImage::new();
        assert_eq!(interp::run(&p, &mut mem, &[5]).unwrap().returns, vec![6, 6]);
        assert_eq!(interp::run(&p, &mut mem, &[-5]).unwrap().returns, vec![-6, -6]);
    }

    #[test]
    #[should_panic(expected = "next arity")]
    fn dynamic_arity_mismatch_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let _ = f.begin_loop_vec("l", vec![Operand::Const(0), Operand::Const(0)]);
        let c = f.lt(0, 1);
        f.begin_body(c);
        let _ = f.end_loop_vec(vec![Operand::Const(1)], vec![]); // 1 != 2
        let _ = pb.finish(f, NO_OPERANDS);
    }
}
