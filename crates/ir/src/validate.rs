//! Static validation of structured programs.
//!
//! Mirrors the guarantees the paper's compiler relies on:
//!
//! * reducible control flow only (the structured IR cannot express
//!   irreducible `goto`s at all, matching footnote 3 of the paper);
//! * an **acyclic call graph** — general recursion must be transformed to
//!   tail recursion (loops) with an explicit stack, exactly as Theorem 1
//!   assumes;
//! * concurrent blocks are DAGs: variables are statically assigned once and
//!   used only after definition, in scope;
//! * loop prologues (`pre`) are pure, so the final test-only iteration has
//!   no side effects;
//! * `if` regions contain no loops or calls (see DESIGN.md §3.1);
//! * call arities match; loop labels used for tag-space sizing are unique.

use std::collections::HashSet;
use std::fmt;

use crate::program::{IfStmt, LoopStmt, Program, Region, Stmt};
use crate::types::{FuncId, Operand, Var};

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A variable was used before being defined (or out of scope).
    UseBeforeDef {
        /// The function containing the use.
        func: String,
        /// The offending variable.
        var: Var,
    },
    /// A variable has more than one static definition.
    Redefinition {
        /// The function containing the definitions.
        func: String,
        /// The offending variable.
        var: Var,
    },
    /// A variable index is outside the function's declared `n_vars`.
    VarOutOfRange {
        /// The function.
        func: String,
        /// The offending variable.
        var: Var,
    },
    /// The call graph has a cycle (general recursion is not directly
    /// representable; use a loop with an explicit stack).
    RecursiveCall {
        /// A function on the cycle.
        func: String,
    },
    /// A call's argument count does not match the callee's parameters.
    CallArity {
        /// Caller function name.
        caller: String,
        /// Callee function name.
        callee: String,
        /// Callee's declared parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// A call's return count does not match the callee's returns.
    ReturnArity {
        /// Caller function name.
        caller: String,
        /// Callee function name.
        callee: String,
        /// Callee's declared return count.
        expected: usize,
        /// Requested return count.
        got: usize,
    },
    /// A call references a function id that does not exist.
    UnknownFunc {
        /// Caller function name.
        caller: String,
        /// The bad id.
        func: FuncId,
    },
    /// A loop `pre` region contains a side-effecting or structured statement.
    ImpurePre {
        /// The loop's label.
        label: String,
    },
    /// A loop's `next` arity differs from its carried-variable count.
    NextArity {
        /// The loop's label.
        label: String,
    },
    /// An `if` region contains a loop or call.
    IfContainsBlock {
        /// The function containing the `if`.
        func: String,
    },
    /// Two loops share a label (labels address tag spaces, so must be
    /// unique program-wide).
    DuplicateLoopLabel {
        /// The duplicated label.
        label: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UseBeforeDef { func, var } => {
                write!(f, "in '{func}': {var} used before definition or out of scope")
            }
            ValidateError::Redefinition { func, var } => {
                write!(f, "in '{func}': {var} statically redefined")
            }
            ValidateError::VarOutOfRange { func, var } => {
                write!(f, "in '{func}': {var} exceeds declared variable count")
            }
            ValidateError::RecursiveCall { func } => {
                write!(f, "call graph cycle through '{func}' (general recursion unsupported)")
            }
            ValidateError::CallArity { caller, callee, expected, got } => {
                write!(f, "'{caller}' calls '{callee}' with {got} args, expected {expected}")
            }
            ValidateError::ReturnArity { caller, callee, expected, got } => {
                write!(
                    f,
                    "'{caller}' expects {got} returns from '{callee}', which returns {expected}"
                )
            }
            ValidateError::UnknownFunc { caller, func } => {
                write!(f, "'{caller}' calls unknown function {func}")
            }
            ValidateError::ImpurePre { label } => {
                write!(f, "loop '{label}': pre region must contain only pure ops")
            }
            ValidateError::NextArity { label } => {
                write!(f, "loop '{label}': next arity differs from carried arity")
            }
            ValidateError::IfContainsBlock { func } => {
                write!(f, "in '{func}': if regions may not contain loops or calls")
            }
            ValidateError::DuplicateLoopLabel { label } => {
                write!(f, "duplicate loop label '{label}'")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates a whole program.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    check_call_graph(program)?;
    let mut labels = HashSet::new();
    for func in &program.funcs {
        let mut v = Validator {
            program,
            func_name: &func.name,
            n_vars: func.n_vars,
            defined: HashSet::new(),
            labels: &mut labels,
        };
        for &p in &func.params {
            v.define(p)?;
        }
        let scope: Vec<Var> = func.params.clone();
        v.check_region(&func.body, &scope, false)?;
        let mut end_scope = scope;
        collect_scope(&func.body, &mut end_scope);
        for &r in &func.returns {
            v.check_use(r, &end_scope)?;
        }
    }
    Ok(())
}

/// Detects cycles in the call graph via DFS.
fn check_call_graph(program: &Program) -> Result<(), ValidateError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    fn callees(r: &Region, out: &mut Vec<FuncId>) {
        for s in &r.stmts {
            match s {
                Stmt::Call { func, .. } => out.push(*func),
                Stmt::Loop(l) => {
                    callees(&l.pre, out);
                    callees(&l.body, out);
                }
                Stmt::If(i) => {
                    callees(&i.then_region, out);
                    callees(&i.else_region, out);
                }
                _ => {}
            }
        }
    }
    fn dfs(program: &Program, f: FuncId, marks: &mut Vec<Mark>) -> Result<(), ValidateError> {
        match marks[f.0 as usize] {
            Mark::Black => return Ok(()),
            Mark::Gray => {
                return Err(ValidateError::RecursiveCall { func: program.func(f).name.clone() })
            }
            Mark::White => {}
        }
        marks[f.0 as usize] = Mark::Gray;
        let mut out = Vec::new();
        callees(&program.func(f).body, &mut out);
        for c in out {
            if (c.0 as usize) >= program.funcs.len() {
                return Err(ValidateError::UnknownFunc {
                    caller: program.func(f).name.clone(),
                    func: c,
                });
            }
            dfs(program, c, marks)?;
        }
        marks[f.0 as usize] = Mark::Black;
        Ok(())
    }
    let mut marks = vec![Mark::White; program.funcs.len()];
    for i in 0..program.funcs.len() {
        dfs(program, FuncId(i as u32), &mut marks)?;
    }
    Ok(())
}

/// Adds every def in `region` (non-recursively w.r.t. inner scopes: only the
/// defs visible to the *enclosing* scope) to `scope`.
fn collect_scope(region: &Region, scope: &mut Vec<Var>) {
    for s in &region.stmts {
        scope.extend(s.defs());
    }
}

struct Validator<'a> {
    program: &'a Program,
    func_name: &'a str,
    n_vars: u32,
    defined: HashSet<Var>,
    labels: &'a mut HashSet<String>,
}

impl<'a> Validator<'a> {
    fn define(&mut self, v: Var) -> Result<(), ValidateError> {
        if v.0 >= self.n_vars {
            return Err(ValidateError::VarOutOfRange { func: self.func_name.into(), var: v });
        }
        if !self.defined.insert(v) {
            return Err(ValidateError::Redefinition { func: self.func_name.into(), var: v });
        }
        Ok(())
    }

    fn check_use(&self, o: Operand, scope: &[Var]) -> Result<(), ValidateError> {
        if let Operand::Var(v) = o {
            if !scope.contains(&v) {
                return Err(ValidateError::UseBeforeDef { func: self.func_name.into(), var: v });
            }
        }
        Ok(())
    }

    /// Validates a region given the variables visible on entry. `in_if`
    /// rejects loops/calls.
    fn check_region(
        &mut self,
        region: &Region,
        entry_scope: &[Var],
        in_if: bool,
    ) -> Result<(), ValidateError> {
        let mut scope: Vec<Var> = entry_scope.to_vec();
        for stmt in &region.stmts {
            match stmt {
                Stmt::Op { dst, lhs, rhs, .. } => {
                    self.check_use(*lhs, &scope)?;
                    self.check_use(*rhs, &scope)?;
                    self.define(*dst)?;
                    scope.push(*dst);
                }
                Stmt::Load { dst, addr } => {
                    self.check_use(*addr, &scope)?;
                    self.define(*dst)?;
                    scope.push(*dst);
                }
                Stmt::Store { addr, value } | Stmt::StoreAdd { addr, value } => {
                    self.check_use(*addr, &scope)?;
                    self.check_use(*value, &scope)?;
                }
                Stmt::Select { dst, cond, on_true, on_false } => {
                    self.check_use(*cond, &scope)?;
                    self.check_use(*on_true, &scope)?;
                    self.check_use(*on_false, &scope)?;
                    self.define(*dst)?;
                    scope.push(*dst);
                }
                Stmt::If(i) => self.check_if(i, &mut scope)?,
                Stmt::Loop(l) => {
                    if in_if {
                        return Err(ValidateError::IfContainsBlock { func: self.func_name.into() });
                    }
                    self.check_loop(l, &mut scope)?;
                }
                Stmt::Call { func, args, rets } => {
                    if in_if {
                        return Err(ValidateError::IfContainsBlock { func: self.func_name.into() });
                    }
                    let idx = func.0 as usize;
                    if idx >= self.program.funcs.len() {
                        return Err(ValidateError::UnknownFunc {
                            caller: self.func_name.into(),
                            func: *func,
                        });
                    }
                    let callee = &self.program.funcs[idx];
                    if callee.params.len() != args.len() {
                        return Err(ValidateError::CallArity {
                            caller: self.func_name.into(),
                            callee: callee.name.clone(),
                            expected: callee.params.len(),
                            got: args.len(),
                        });
                    }
                    if callee.returns.len() != rets.len() {
                        return Err(ValidateError::ReturnArity {
                            caller: self.func_name.into(),
                            callee: callee.name.clone(),
                            expected: callee.returns.len(),
                            got: rets.len(),
                        });
                    }
                    for &a in args {
                        self.check_use(a, &scope)?;
                    }
                    for &r in rets {
                        self.define(r)?;
                        scope.push(r);
                    }
                }
            }
        }
        Ok(())
    }

    fn check_if(&mut self, i: &IfStmt, scope: &mut Vec<Var>) -> Result<(), ValidateError> {
        self.check_use(i.cond, scope)?;
        self.check_region(&i.then_region, scope, true)?;
        self.check_region(&i.else_region, scope, true)?;
        let mut then_scope = scope.clone();
        collect_scope(&i.then_region, &mut then_scope);
        let mut else_scope = scope.clone();
        collect_scope(&i.else_region, &mut else_scope);
        for &(d, t, e) in &i.merges {
            self.check_use(t, &then_scope)?;
            self.check_use(e, &else_scope)?;
            self.define(d)?;
            scope.push(d);
        }
        Ok(())
    }

    fn check_loop(&mut self, l: &LoopStmt, scope: &mut Vec<Var>) -> Result<(), ValidateError> {
        if !self.labels.insert(l.label.clone()) {
            return Err(ValidateError::DuplicateLoopLabel { label: l.label.clone() });
        }
        if l.next.len() != l.carried.len() {
            return Err(ValidateError::NextArity { label: l.label.clone() });
        }
        // Pre region: pure statements only.
        for s in &l.pre.stmts {
            if !matches!(s, Stmt::Op { .. } | Stmt::Select { .. }) {
                return Err(ValidateError::ImpurePre { label: l.label.clone() });
            }
        }
        // Loop scope starts from the carried vars ONLY — the loop body must
        // not reference parent locals directly (they belong to a different
        // concurrent block / tag space). Anything needed inside must be
        // carried in. Constants are fine (immediates).
        let mut loop_scope: Vec<Var> = Vec::new();
        for &(v, init) in &l.carried {
            self.check_use(init, scope)?;
            self.define(v)?;
            loop_scope.push(v);
        }
        self.check_region(&l.pre, &loop_scope, false)?;
        let mut pre_scope = loop_scope.clone();
        collect_scope(&l.pre, &mut pre_scope);
        self.check_use(l.cond, &pre_scope)?;
        self.check_region(&l.body, &pre_scope, false)?;
        let mut body_scope = pre_scope.clone();
        collect_scope(&l.body, &mut body_scope);
        for &n in &l.next {
            self.check_use(n, &body_scope)?;
        }
        for &(d, src) in &l.exits {
            // Exits leave from the failing test: only carried/pre values exist.
            self.check_use(src, &pre_scope)?;
            self.define(d)?;
            scope.push(d);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::types::{AluOp, NO_OPERANDS};

    fn valid_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, n] = f.begin_loop("l", [0.into(), 0.into(), n]);
        let c = f.lt(i, n);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2, n], [acc]);
        pb.finish(f, [out])
    }

    #[test]
    fn accepts_valid_program() {
        assert_eq!(validate(&valid_program()), Ok(()));
    }

    #[test]
    fn rejects_use_before_def() {
        let mut p = valid_program();
        // Inject a use of an undefined var into main's body.
        p.funcs[0].body.stmts.insert(
            0,
            Stmt::Op {
                dst: Var(90),
                op: AluOp::Add,
                lhs: Operand::Var(Var(80)),
                rhs: Operand::Const(0),
            },
        );
        p.funcs[0].n_vars = 100;
        assert!(matches!(validate(&p), Err(ValidateError::UseBeforeDef { .. })));
    }

    #[test]
    fn rejects_parent_scope_reference_in_loop_body() {
        // The loop body references `n` (a parent local) without carrying it.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i] = f.begin_loop("l", [0]);
        let c = f.lt(i, 10);
        f.begin_body(c);
        let i2 = f.add(i, n); // illegal: n belongs to the parent block
        f.end_loop([i2], NO_OPERANDS);
        let p = pb.finish(f, NO_OPERANDS);
        assert!(matches!(validate(&p), Err(ValidateError::UseBeforeDef { .. })));
    }

    #[test]
    fn rejects_recursion() {
        let mut pb = ProgramBuilder::new();
        let fid = pb.declare("rec", 1);
        let mut f = pb.func_for(fid);
        let x = f.param(0);
        let r = f.call(fid, &[x], 1);
        pb.define(f, [r[0]]);
        let p = pb.build();
        assert!(matches!(validate(&p), Err(ValidateError::RecursiveCall { .. })));
    }

    #[test]
    fn rejects_impure_pre() {
        let mut p = valid_program();
        // Force a load into the pre region.
        if let Stmt::Loop(l) = &mut p.funcs[0].body.stmts[0] {
            l.pre.stmts.push(Stmt::Load { dst: Var(50), addr: Operand::Const(0) });
            p.funcs[0].n_vars = 60;
        } else {
            panic!("expected loop");
        }
        assert!(matches!(validate(&p), Err(ValidateError::ImpurePre { .. })));
    }

    #[test]
    fn rejects_duplicate_labels() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        for _ in 0..2 {
            let [i] = f.begin_loop("same", [0]);
            let c = f.lt(i, 1);
            f.begin_body(c);
            let i2 = f.add(i, 1);
            f.end_loop([i2], NO_OPERANDS);
        }
        let p = pb.finish(f, NO_OPERANDS);
        assert!(matches!(validate(&p), Err(ValidateError::DuplicateLoopLabel { .. })));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut pb = ProgramBuilder::new();
        let g = pb.func("g", 2);
        let a = g.param(0);
        let gid = g.id();
        pb.define(g, [a]);
        let mut f = pb.func("main", 0);
        let r = f.call(gid, &[Operand::Const(1)], 1); // needs 2 args
        let p = pb.finish(f, [r[0]]);
        assert!(matches!(validate(&p), Err(ValidateError::CallArity { .. })));
    }

    #[test]
    fn rejects_loop_inside_if() {
        // Hand-construct: if (1) { loop {} }
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("inner", [0]);
        let c = f.lt(i, 1);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        f.end_loop([i2], NO_OPERANDS);
        let mut p = pb.finish(f, NO_OPERANDS);
        let lp = p.funcs[0].body.stmts.pop().unwrap();
        p.funcs[0].body.stmts.push(Stmt::If(IfStmt {
            cond: Operand::Const(1),
            then_region: Region { stmts: vec![lp] },
            else_region: Region::default(),
            merges: vec![],
        }));
        assert!(matches!(validate(&p), Err(ValidateError::IfContainsBlock { .. })));
    }

    #[test]
    fn rejects_exit_referencing_body_var() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("l", [0]);
        let c = f.lt(i, 3);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        // Exit uses a body var (i2) — illegal: exits leave from the failing
        // test, where the body never ran.
        let [_bad] = f.end_loop([i2], [i2]);
        let p = pb.finish(f, NO_OPERANDS);
        assert!(matches!(validate(&p), Err(ValidateError::UseBeforeDef { .. })));
    }
}
