//! Core value and operand types shared by the whole workspace.

use std::fmt;

/// The machine word. All data in the simulated machines is `i64`; the paper's
/// evaluation studies token *synchronization*, which is agnostic to the data
/// type, so integer kernels are used throughout.
pub type Value = i64;

/// A virtual register, scoped to one [`Function`](crate::Function). Every
/// `Var` is statically assigned exactly once (loop-carried variables are
/// rebound dynamically on each iteration, but have a single static binder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An instruction operand: a variable reference or an immediate constant.
///
/// Immediates follow the convention of real dataflow ISAs (e.g. RipTide):
/// they are encoded in the instruction rather than carried as tokens, so they
/// create no token traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A reference to a variable defined earlier in scope.
    Var(Var),
    /// An immediate constant.
    Const(Value),
}

impl Operand {
    /// Returns the variable if this operand is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
}

impl From<Var> for Operand {
    fn from(v: Var) -> Self {
        Operand::Var(v)
    }
}

impl From<Value> for Operand {
    fn from(c: Value) -> Self {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An empty operand array, for `end_loop`/`finish` calls with no
/// exits/returns (plain `[]` cannot infer its element type).
pub const NO_OPERANDS: [Operand; 0] = [];

/// Identifies a [`Function`](crate::Function) within a
/// [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifies a loop (a concurrent block) within a program. Stable across
/// lowering, so per-block tag-space sizes (Sec. VII-E) can be addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// Arithmetic/logic opcodes — the paper's "standard set of arithmetic
/// instructions" (Table I).
///
/// Comparison results are `0`/`1`. Arithmetic wraps (two's complement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division. Dividing by zero is a simulation error.
    Div,
    /// Signed remainder. Dividing by zero is a simulation error.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift; the shift amount is masked to 0..=63.
    Shl,
    /// Arithmetic right shift; the shift amount is masked to 0..=63.
    Shr,
    /// Signed less-than (0/1).
    Lt,
    /// Signed less-or-equal (0/1).
    Le,
    /// Signed greater-than (0/1).
    Gt,
    /// Signed greater-or-equal (0/1).
    Ge,
    /// Equality (0/1).
    Eq,
    /// Inequality (0/1).
    Ne,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise not of the first operand (second ignored).
    Not,
    /// Arithmetic negation of the first operand (second ignored).
    Neg,
    /// Copy of the first operand (second ignored).
    Mov,
}

/// Error produced when evaluating an [`AluOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluError {
    /// Division or remainder by zero.
    DivByZero,
}

impl fmt::Display for AluError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AluError::DivByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for AluError {}

impl AluOp {
    /// Whether the op reads only its first operand.
    pub fn is_unary(self) -> bool {
        matches!(self, AluOp::Not | AluOp::Neg | AluOp::Mov)
    }

    /// Evaluates the op on two word values.
    ///
    /// # Errors
    ///
    /// Returns [`AluError::DivByZero`] for `Div`/`Rem` with a zero divisor.
    pub fn eval(self, a: Value, b: Value) -> Result<Value, AluError> {
        Ok(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return Err(AluError::DivByZero);
                }
                a.wrapping_div(b)
            }
            AluOp::Rem => {
                if b == 0 {
                    return Err(AluError::DivByZero);
                }
                a.wrapping_rem(b)
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Lt => (a < b) as Value,
            AluOp::Le => (a <= b) as Value,
            AluOp::Gt => (a > b) as Value,
            AluOp::Ge => (a >= b) as Value,
            AluOp::Eq => (a == b) as Value,
            AluOp::Ne => (a != b) as Value,
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
            AluOp::Not => !a,
            AluOp::Neg => a.wrapping_neg(),
            AluOp::Mov => a,
        })
    }

    /// Short mnemonic used by the pretty printer and DOT export.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Lt => "lt",
            AluOp::Le => "le",
            AluOp::Gt => "gt",
            AluOp::Ge => "ge",
            AluOp::Eq => "eq",
            AluOp::Ne => "ne",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::Not => "not",
            AluOp::Neg => "neg",
            AluOp::Mov => "mov",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arithmetic() {
        assert_eq!(AluOp::Add.eval(2, 3), Ok(5));
        assert_eq!(AluOp::Sub.eval(2, 3), Ok(-1));
        assert_eq!(AluOp::Mul.eval(-4, 3), Ok(-12));
        assert_eq!(AluOp::Div.eval(7, 2), Ok(3));
        assert_eq!(AluOp::Rem.eval(7, 2), Ok(1));
        assert_eq!(AluOp::Div.eval(7, 0), Err(AluError::DivByZero));
        assert_eq!(AluOp::Rem.eval(7, 0), Err(AluError::DivByZero));
    }

    #[test]
    fn eval_wraps() {
        assert_eq!(AluOp::Add.eval(Value::MAX, 1), Ok(Value::MIN));
        assert_eq!(AluOp::Neg.eval(Value::MIN, 0), Ok(Value::MIN));
    }

    #[test]
    fn eval_comparisons_are_boolean() {
        assert_eq!(AluOp::Lt.eval(1, 2), Ok(1));
        assert_eq!(AluOp::Lt.eval(2, 2), Ok(0));
        assert_eq!(AluOp::Le.eval(2, 2), Ok(1));
        assert_eq!(AluOp::Gt.eval(3, 2), Ok(1));
        assert_eq!(AluOp::Ge.eval(1, 2), Ok(0));
        assert_eq!(AluOp::Eq.eval(5, 5), Ok(1));
        assert_eq!(AluOp::Ne.eval(5, 5), Ok(0));
    }

    #[test]
    fn eval_shifts_mask_amount() {
        assert_eq!(AluOp::Shl.eval(1, 64), Ok(1)); // 64 & 63 == 0
        assert_eq!(AluOp::Shl.eval(1, 3), Ok(8));
        assert_eq!(AluOp::Shr.eval(-8, 1), Ok(-4)); // arithmetic shift
    }

    #[test]
    fn eval_unary() {
        assert!(AluOp::Not.is_unary());
        assert!(!AluOp::Add.is_unary());
        assert_eq!(AluOp::Not.eval(0, 99), Ok(-1));
        assert_eq!(AluOp::Mov.eval(42, 99), Ok(42));
        assert_eq!(AluOp::Min.eval(-3, 7), Ok(-3));
        assert_eq!(AluOp::Max.eval(-3, 7), Ok(7));
    }

    #[test]
    fn operand_conversions() {
        let v = Var(3);
        let o: Operand = v.into();
        assert_eq!(o.as_var(), Some(v));
        let c: Operand = 42i64.into();
        assert_eq!(c.as_var(), None);
        assert_eq!(format!("{o}"), "v3");
        assert_eq!(format!("{c}"), "42");
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", FuncId(2)), "f2");
        assert_eq!(format!("{}", LoopId(7)), "loop7");
        assert_eq!(format!("{}", AluOp::Add), "add");
    }
}
