//! `tyr-lang` — a small imperative language that compiles to the TYR
//! structured IR.
//!
//! The paper compiles *unmodified C* through LLVM and UDIR (Sec. IV-C).
//! This crate is that front-end in miniature: a C-like surface syntax whose
//! mutable variables, `while` loops, and `if`/`else` are converted into the
//! IR's concurrent-block form — loop-carried values are *inferred* from
//! mutation, loop-invariant reads are carried through transfer points, and
//! branch-assigned names become merges.
//!
//! ```text
//! fn main(n) {
//!     let i = 0;
//!     let acc = 0;
//!     while (i < n) {
//!         if (i % 2 == 0) { acc = acc + i; }
//!         i = i + 1;
//!     }
//!     return acc;
//! }
//! ```
//!
//! Memory is accessed through the builtins `load(addr)`, `store(addr, v)`
//! and `fetch_add(addr, v)`; array base addresses and other link-time
//! constants are injected by the embedder via [`compile()`]'s `consts`
//! argument.
//!
//! Restrictions (inherited from the IR, see `tyr-ir` docs): `while`
//! conditions must be pure, `if` branches may not contain loops or calls,
//! functions may not recurse, and `return` is only allowed as a function's
//! final statement.

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;

pub use compile::{compile, compile_ast, CompileError};
pub use parser::{parse, ParseError};
