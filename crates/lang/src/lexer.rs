//! Tokenizer for the `tyr-lang` surface syntax.

use std::fmt;

/// A token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword-free name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `while`
    While,
    /// `if`
    If,
    /// `else`
    Else,
    /// `return`
    Return,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier '{s}'"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Fn => write!(f, "'fn'"),
            Tok::Let => write!(f, "'let'"),
            Tok::While => write!(f, "'while'"),
            Tok::If => write!(f, "'if'"),
            Tok::Else => write!(f, "'else'"),
            Tok::Return => write!(f, "'return'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::LBrace => write!(f, "'{{'"),
            Tok::RBrace => write!(f, "'}}'"),
            Tok::Comma => write!(f, "','"),
            Tok::Semi => write!(f, "';'"),
            Tok::Assign => write!(f, "'='"),
            Tok::Plus => write!(f, "'+'"),
            Tok::Minus => write!(f, "'-'"),
            Tok::Star => write!(f, "'*'"),
            Tok::Slash => write!(f, "'/'"),
            Tok::Percent => write!(f, "'%'"),
            Tok::Amp => write!(f, "'&'"),
            Tok::Pipe => write!(f, "'|'"),
            Tok::Caret => write!(f, "'^'"),
            Tok::Shl => write!(f, "'<<'"),
            Tok::Shr => write!(f, "'>>'"),
            Tok::Lt => write!(f, "'<'"),
            Tok::Le => write!(f, "'<='"),
            Tok::Gt => write!(f, "'>'"),
            Tok::Ge => write!(f, "'>='"),
            Tok::EqEq => write!(f, "'=='"),
            Tok::Ne => write!(f, "'!='"),
            Tok::AndAnd => write!(f, "'&&'"),
            Tok::OrOr => write!(f, "'||'"),
            Tok::Bang => write!(f, "'!'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a source string. Supports `//` line comments.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let (mut line, mut col) = (1u32, 1u32);

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            out.push(Token { kind: $kind, line, col });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal '{text}' out of range"),
                    line,
                    col,
                })?;
                out.push(Token { kind: Tok::Int(value), line, col });
                col += (i - start) as u32;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "while" => Tok::While,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "return" => Tok::Return,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Token { kind, line, col });
                col += (i - start) as u32;
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            ',' => push!(Tok::Comma, 1),
            ';' => push!(Tok::Semi, 1),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '%' => push!(Tok::Percent, 1),
            '^' => push!(Tok::Caret, 1),
            '&' if bytes.get(i + 1) == Some(&b'&') => push!(Tok::AndAnd, 2),
            '&' => push!(Tok::Amp, 1),
            '|' if bytes.get(i + 1) == Some(&b'|') => push!(Tok::OrOr, 2),
            '|' => push!(Tok::Pipe, 1),
            '<' if bytes.get(i + 1) == Some(&b'<') => push!(Tok::Shl, 2),
            '<' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Le, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'>') => push!(Tok::Shr, 2),
            '>' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '=' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::EqEq, 2),
            '=' => push!(Tok::Assign, 1),
            '!' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Ne, 2),
            '!' => push!(Tok::Bang, 1),
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    line,
                    col,
                })
            }
        }
    }
    out.push(Token { kind: Tok::Eof, line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fn foo while whilex"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::While,
                Tok::Ident("whilex".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_operators() {
        assert_eq!(
            kinds("1 <= 23 << 4 < 5 == 6"),
            vec![
                Tok::Int(1),
                Tok::Le,
                Tok::Int(23),
                Tok::Shl,
                Tok::Int(4),
                Tok::Lt,
                Tok::Int(5),
                Tok::EqEq,
                Tok::Int(6),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("x // comment\ny").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].kind, Tok::Ident("y".into()));
    }

    #[test]
    fn rejects_unknown_chars() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn rejects_huge_literals() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn logical_vs_bitwise() {
        assert_eq!(
            kinds("a && b & c"),
            vec![
                Tok::Ident("a".into()),
                Tok::AndAnd,
                Tok::Ident("b".into()),
                Tok::Amp,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }
}
