//! Recursive-descent parser for `tyr-lang`.
//!
//! Grammar (C-like precedence, lowest first):
//!
//! ```text
//! program   := fndecl*
//! fndecl    := 'fn' IDENT '(' params? ')' block
//! block     := '{' stmt* '}'
//! stmt      := 'let' IDENT '=' expr ';'
//!            | IDENT '=' expr ';'
//!            | 'store' '(' expr ',' expr ')' ';'
//!            | 'fetch_add' '(' expr ',' expr ')' ';'
//!            | 'while' '(' expr ')' block
//!            | 'if' '(' expr ')' block ('else' block)?
//!            | 'return' expr (',' expr)* ';'
//!            | IDENT '(' args? ')' ';'
//! expr      := or
//! or        := and ('||' and)*
//! and       := bitor ('&&' bitor)*
//! bitor     := bitxor ('|' bitxor)*
//! bitxor    := bitand ('^' bitand)*
//! bitand    := equality ('&' equality)*
//! equality  := relational (('==' | '!=') relational)*
//! relational:= shift (('<' | '<=' | '>' | '>=') shift)*
//! shift     := additive (('<<' | '>>') additive)*
//! additive  := term (('+' | '-') term)*
//! term      := unary (('*' | '/' | '%') unary)*
//! unary     := ('-' | '!') unary | primary
//! primary   := INT | IDENT | IDENT '(' args? ')' | 'load' '(' expr ')'
//!            | '(' expr ')'
//! ```

use std::fmt;

use crate::ast::{Ast, BinOp, Expr, FnDecl, Stmt};
use crate::lexer::{lex, LexError, Tok, Token};

/// A parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, line: e.line, col: e.col }
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
pub fn parse(src: &str) -> Result<Ast, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut funcs = Vec::new();
    while p.peek() != &Tok::Eof {
        funcs.push(p.fndecl()?);
    }
    if funcs.is_empty() {
        return Err(ParseError { message: "program has no functions".into(), line: 1, col: 1 });
    }
    Ok(Ast { funcs })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.here();
        Err(ParseError { message: message.into(), line, col })
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        if self.peek() == &want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn fndecl(&mut self) -> Result<FnDecl, ParseError> {
        let (line, _) = self.here();
        self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.ident()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(FnDecl { name, params, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return self.err("unexpected end of input inside a block");
            }
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let (line, _) = self.here();
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let { name, value, line })
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.peek() == &Tok::Else {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_body, else_body, line })
            }
            Tok::Return => {
                self.bump();
                let mut values = vec![self.expr()?];
                while self.peek() == &Tok::Comma {
                    self.bump();
                    values.push(self.expr()?);
                }
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { values, line })
            }
            Tok::Ident(name) => {
                // Disambiguate: assignment, builtin, or bare call.
                if self.peek2() == &Tok::Assign {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Assign { name, value, line })
                } else if self.peek2() == &Tok::LParen {
                    self.bump();
                    self.bump();
                    match name.as_str() {
                        "store" | "fetch_add" => {
                            let addr = self.expr()?;
                            self.expect(Tok::Comma)?;
                            let value = self.expr()?;
                            self.expect(Tok::RParen)?;
                            self.expect(Tok::Semi)?;
                            if name == "store" {
                                Ok(Stmt::Store { addr, value, line })
                            } else {
                                Ok(Stmt::FetchAdd { addr, value, line })
                            }
                        }
                        _ => {
                            let args = self.call_args()?;
                            self.expect(Tok::Semi)?;
                            Ok(Stmt::CallStmt { name, args, line })
                        }
                    }
                } else {
                    self.err(format!(
                        "expected '=' or '(' after identifier '{name}' in statement position"
                    ))
                }
            }
            other => self.err(format!("expected a statement, found {other}")),
        }
    }

    /// Parses `expr, expr, ...)` after the opening parenthesis was consumed.
    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    /// Precedence-climbing over the table below (lowest level first).
    fn binary(&mut self, level: usize) -> Result<Expr, ParseError> {
        const LEVELS: &[&[(Tok, BinOp)]] = &[
            &[(Tok::OrOr, BinOp::OrOr)],
            &[(Tok::AndAnd, BinOp::AndAnd)],
            &[(Tok::Pipe, BinOp::Or)],
            &[(Tok::Caret, BinOp::Xor)],
            &[(Tok::Amp, BinOp::And)],
            &[(Tok::EqEq, BinOp::Eq), (Tok::Ne, BinOp::Ne)],
            &[
                (Tok::Lt, BinOp::Lt),
                (Tok::Le, BinOp::Le),
                (Tok::Gt, BinOp::Gt),
                (Tok::Ge, BinOp::Ge),
            ],
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
            &[(Tok::Star, BinOp::Mul), (Tok::Slash, BinOp::Div), (Tok::Percent, BinOp::Rem)],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        'outer: loop {
            for (tok, op) in LEVELS[level] {
                if self.peek() == tok {
                    self.bump();
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr::Bin(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.unary()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let (line, _) = self.here();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    if name == "load" {
                        let addr = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Load(Box::new(addr), line))
                    } else {
                        let args = self.call_args()?;
                        Ok(Expr::Call { name, args, line })
                    }
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let ast = parse("fn main() { return 0; }").unwrap();
        assert_eq!(ast.funcs.len(), 1);
        assert_eq!(ast.funcs[0].name, "main");
        assert!(ast.funcs[0].params.is_empty());
    }

    #[test]
    fn precedence_mul_over_add() {
        let ast = parse("fn main() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return { values, .. } = &ast.funcs[0].body[0] else { panic!() };
        let Expr::Bin(BinOp::Add, _, rhs) = &values[0] else { panic!("{:?}", values[0]) };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn precedence_cmp_over_logical() {
        let ast = parse("fn main(a, b) { return a < 3 && b > 4; }").unwrap();
        let Stmt::Return { values, .. } = &ast.funcs[0].body[0] else { panic!() };
        assert!(matches!(values[0], Expr::Bin(BinOp::AndAnd, _, _)));
    }

    #[test]
    fn parses_control_flow_and_memory() {
        let src = "
            fn main(n) {
                let i = 0;
                let acc = 0;
                while (i < n) {
                    if (i % 2 == 0) { acc = acc + load(i); } else { store(i, acc); }
                    fetch_add(64, 1);
                    i = i + 1;
                }
                return acc;
            }";
        let ast = parse(src).unwrap();
        assert_eq!(ast.funcs[0].params, vec!["n"]);
        assert_eq!(ast.funcs[0].body.len(), 4);
    }

    #[test]
    fn parses_calls_and_multi_return() {
        let src = "
            fn minmax(a, b) { return a, b; }
            fn main() {
                helper(1, 2);
                return f(g(3), 4) + 1;
            }";
        let ast = parse(src).unwrap();
        assert_eq!(ast.funcs.len(), 2);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("fn main() {\n  let = 3;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("identifier"));
        let err = parse("fn main() { return 1 }").unwrap_err();
        assert!(err.message.contains("';'"), "{}", err.message);
    }

    #[test]
    fn rejects_empty_program_and_stray_tokens() {
        assert!(parse("").is_err());
        assert!(parse("fn main() { return 0; } garbage").is_err());
    }

    #[test]
    fn unary_operators_nest() {
        let ast = parse("fn main(x) { return - - x + !x; }").unwrap();
        let Stmt::Return { values, .. } = &ast.funcs[0].body[0] else { panic!() };
        assert!(matches!(values[0], Expr::Bin(BinOp::Add, _, _)));
    }
}

#[cfg(test)]
mod robustness {
    //! Seeded fuzz tests (formerly proptest; rewritten on a local SplitMix64
    //! so the crate builds with no registry access).

    /// Minimal SplitMix64, local to the tests: `tyr-lang` depends only on
    /// `tyr-ir`, so it cannot borrow the generator from `tyr-workloads`.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn index(&mut self, n: usize) -> usize {
            ((self.next() as u128 * n as u128) >> 64) as usize
        }
    }

    /// The parser never panics: any input produces Ok or a positioned error.
    #[test]
    fn parser_total_on_arbitrary_input() {
        let mut rng = Rng(0xC0FFEE);
        for _ in 0..256 {
            let len = rng.index(201);
            let src: String = (0..len)
                .map(|_| {
                    // Printable ASCII (0x20..=0x7E) plus newline.
                    let c = rng.index(96);
                    if c == 95 {
                        '\n'
                    } else {
                        (0x20 + c as u8) as char
                    }
                })
                .collect();
            let _ = super::parse(&src);
        }
    }

    /// Valid-looking programs with random identifiers/integers parse or fail
    /// gracefully.
    #[test]
    fn parser_total_on_program_shaped_input() {
        let ops = ["+", "*", "<", "&&", "<<"];
        let mut rng = Rng(0xBEEF);
        for _ in 0..256 {
            // Prefixed so the generated name can never be a keyword.
            let name_len = rng.index(8);
            let mut name = String::from("v");
            for _ in 0..name_len {
                name.push((b'a' + rng.index(26) as u8) as char);
            }
            let n = rng.index(1000) as i64;
            let op = ops[rng.index(ops.len())];
            let src = format!("fn main({name}) {{ return {name} {op} {n}; }}");
            let ast = super::parse(&src).unwrap();
            assert_eq!(ast.funcs.len(), 1);
        }
    }
}
