//! Compiles the `tyr-lang` AST to the structured `tyr-ir` [`Program`].
//!
//! The interesting work is converting *mutable variables* into the IR's
//! dataflow form:
//!
//! * **Loops.** Every outer variable a `while` reads or writes becomes a
//!   loop-carried value — mutated variables chain through the backedge,
//!   loop-invariant reads are carried unchanged (the transfer-point
//!   argument-passing discipline of the paper's Fig. 10). After the loop,
//!   each name rebinds to the loop's exit value.
//! * **Conditionals.** Variables assigned in either branch merge back via
//!   the `if`'s merge list (φ-nodes, effectively); unassigned names keep
//!   their pre-branch value.
//!
//! This is the same job UDIR does for C, in miniature. Restrictions mirror
//! the IR's: `while` condition expressions must be pure (no `load`/calls),
//! and `if` branches may not contain loops or calls.

use std::collections::HashMap;
use std::fmt;

use tyr_ir::build::{FuncBuilder, ProgramBuilder};
use tyr_ir::validate::validate;
use tyr_ir::{AluOp, FuncId, Operand, Program};

use crate::ast::{Ast, BinOp, Expr, Stmt};
use crate::parser::{parse, ParseError};

/// A compilation error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line (0 when not attributable).
    pub line: u32,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError { message: e.message, line: e.line }
    }
}

/// Parses and compiles a source string.
///
/// `consts` are named integer constants visible in every function — the
/// embedder passes array base addresses and sizes here, playing the role of
/// the linker: `("A", a.base_const())`, `("N", 64)`, …
///
/// # Errors
///
/// Returns a [`CompileError`] for syntax errors, unknown names, arity
/// mismatches, unsupported placements (loops/calls inside `if`), or any
/// IR validation failure.
///
/// # Example
///
/// ```
/// use tyr_lang::compile;
/// use tyr_ir::{interp, MemoryImage};
///
/// let program = compile(
///     "fn main(n) {
///          let i = 0;
///          let acc = 0;
///          while (i < n) {
///              acc = acc + i;
///              i = i + 1;
///          }
///          return acc;
///      }",
///     &[],
/// )?;
/// let mut mem = MemoryImage::new();
/// assert_eq!(interp::run(&program, &mut mem, &[10])?.returns, vec![45]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(src: &str, consts: &[(&str, i64)]) -> Result<Program, CompileError> {
    let ast = parse(src)?;
    compile_ast(&ast, consts)
}

/// Compiles an already-parsed [`Ast`]. See [`compile`].
///
/// # Errors
///
/// See [`compile`].
pub fn compile_ast(ast: &Ast, consts: &[(&str, i64)]) -> Result<Program, CompileError> {
    let consts: HashMap<String, i64> = consts.iter().map(|&(n, v)| (n.to_string(), v)).collect();

    // Declare every function first (arbitrary call order within the DAG).
    let mut pb = ProgramBuilder::new();
    let mut sigs: HashMap<String, (FuncId, usize, usize)> = HashMap::new();
    for f in &ast.funcs {
        if sigs.contains_key(&f.name) {
            return Err(CompileError {
                message: format!("function '{}' defined twice", f.name),
                line: f.line,
            });
        }
        let n_rets = match f.body.last() {
            Some(Stmt::Return { values, .. }) => values.len(),
            _ => 0,
        };
        let id = pb.declare(&f.name, f.params.len());
        sigs.insert(f.name.clone(), (id, f.params.len(), n_rets));
    }

    for f in &ast.funcs {
        let fb = pb.func_for(sigs[&f.name].0);
        let mut cc = FnCompiler {
            fb,
            env: HashMap::new(),
            consts: &consts,
            sigs: &sigs,
            fn_name: &f.name,
            loop_counter: 0,
        };
        for (k, p) in f.params.iter().enumerate() {
            let op = cc.fb.param(k);
            cc.env.insert(p.clone(), op);
        }
        let mut returns: Vec<Operand> = Vec::new();
        for (idx, stmt) in f.body.iter().enumerate() {
            if let Stmt::Return { values, line } = stmt {
                if idx + 1 != f.body.len() {
                    return Err(CompileError {
                        message: "'return' must be the last statement of a function".into(),
                        line: *line,
                    });
                }
                returns = values.iter().map(|e| cc.expr(e)).collect::<Result<_, _>>()?;
            } else {
                cc.stmt(stmt, false)?;
            }
        }
        pb.define_vec(cc.fb, returns);
    }

    let program = pb.build();
    validate(&program).map_err(|e| CompileError {
        message: format!("generated IR failed validation: {e}"),
        line: 0,
    })?;
    Ok(program)
}

struct FnCompiler<'a> {
    fb: FuncBuilder,
    env: HashMap<String, Operand>,
    consts: &'a HashMap<String, i64>,
    sigs: &'a HashMap<String, (FuncId, usize, usize)>,
    fn_name: &'a str,
    loop_counter: u32,
}

/// Collects names referenced (read or written) by statements/expressions.
fn collect_names(stmts: &[Stmt], out: &mut Vec<String>) {
    fn expr_names(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Int(_) => {}
            Expr::Var(n, _) => out.push(n.clone()),
            Expr::Bin(_, a, b) => {
                expr_names(a, out);
                expr_names(b, out);
            }
            Expr::Neg(a) | Expr::Not(a) | Expr::Load(a, _) => expr_names(a, out),
            Expr::Call { args, .. } => {
                for a in args {
                    expr_names(a, out);
                }
            }
        }
    }
    for s in stmts {
        match s {
            Stmt::Let { value, .. } => expr_names(value, out),
            Stmt::Assign { name, value, .. } => {
                out.push(name.clone());
                expr_names(value, out);
            }
            Stmt::Store { addr, value, .. } | Stmt::FetchAdd { addr, value, .. } => {
                expr_names(addr, out);
                expr_names(value, out);
            }
            Stmt::While { cond, body, .. } => {
                expr_names(cond, out);
                collect_names(body, out);
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                expr_names(cond, out);
                collect_names(then_body, out);
                collect_names(else_body, out);
            }
            Stmt::Return { values, .. } => {
                for v in values {
                    expr_names(v, out);
                }
            }
            Stmt::CallStmt { args, .. } => {
                for a in args {
                    expr_names(a, out);
                }
            }
        }
    }
}

/// Names assigned (mutated) by statements, recursively.
fn assigned_names(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { name, .. } => out.push(name.clone()),
            Stmt::While { body, .. } => assigned_names(body, out),
            Stmt::If { then_body, else_body, .. } => {
                assigned_names(then_body, out);
                assigned_names(else_body, out);
            }
            _ => {}
        }
    }
}

fn contains_loop_or_call(stmts: &[Stmt]) -> Option<u32> {
    for s in stmts {
        match s {
            Stmt::While { line, .. } | Stmt::CallStmt { line, .. } => return Some(*line),
            Stmt::If { then_body, else_body, .. } => {
                if let Some(l) = contains_loop_or_call(then_body) {
                    return Some(l);
                }
                if let Some(l) = contains_loop_or_call(else_body) {
                    return Some(l);
                }
            }
            Stmt::Let { value, line, .. } | Stmt::Assign { value, line, .. } => {
                if expr_contains_call(value) {
                    return Some(*line);
                }
            }
            Stmt::Store { addr, value, line } | Stmt::FetchAdd { addr, value, line } => {
                if expr_contains_call(addr) || expr_contains_call(value) {
                    return Some(*line);
                }
            }
            Stmt::Return { .. } => {}
        }
    }
    None
}

fn expr_contains_call(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Var(..) => false,
        Expr::Bin(_, a, b) => expr_contains_call(a) || expr_contains_call(b),
        Expr::Neg(a) | Expr::Not(a) | Expr::Load(a, _) => expr_contains_call(a),
        Expr::Call { .. } => true,
    }
}

impl<'a> FnCompiler<'a> {
    fn err<T>(&self, message: impl Into<String>, line: u32) -> Result<T, CompileError> {
        Err(CompileError { message: message.into(), line })
    }

    fn lookup(&self, name: &str, line: u32) -> Result<Operand, CompileError> {
        if let Some(&op) = self.env.get(name) {
            return Ok(op);
        }
        if let Some(&c) = self.consts.get(name) {
            return Ok(Operand::Const(c));
        }
        self.err(format!("unknown name '{name}'"), line)
    }

    fn expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        Ok(match e {
            Expr::Int(v) => Operand::Const(*v),
            Expr::Var(n, line) => self.lookup(n, *line)?,
            Expr::Bin(op, a, b) => {
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                let alu = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::Mul => AluOp::Mul,
                    BinOp::Div => AluOp::Div,
                    BinOp::Rem => AluOp::Rem,
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Or,
                    BinOp::Xor => AluOp::Xor,
                    BinOp::Shl => AluOp::Shl,
                    BinOp::Shr => AluOp::Shr,
                    BinOp::Lt => AluOp::Lt,
                    BinOp::Le => AluOp::Le,
                    BinOp::Gt => AluOp::Gt,
                    BinOp::Ge => AluOp::Ge,
                    BinOp::Eq => AluOp::Eq,
                    BinOp::Ne => AluOp::Ne,
                    // Logical ops are normalized (x != 0) then combined
                    // bitwise; both sides are evaluated (no short circuit —
                    // if-conversion, as dataflow wants).
                    BinOp::AndAnd | BinOp::OrOr => {
                        let an = self.fb.ne(a, 0);
                        let bn = self.fb.ne(b, 0);
                        return Ok(if *op == BinOp::AndAnd {
                            self.fb.and_(an, bn)
                        } else {
                            self.fb.or_(an, bn)
                        });
                    }
                };
                self.fb.op(alu, a, b)
            }
            Expr::Neg(a) => {
                let a = self.expr(a)?;
                self.fb.neg(a)
            }
            Expr::Not(a) => {
                let a = self.expr(a)?;
                self.fb.eq(a, 0)
            }
            Expr::Load(addr, _) => {
                let a = self.expr(addr)?;
                self.fb.load(a)
            }
            Expr::Call { name, args, line } => {
                let &(id, n_params, n_rets) = self.sigs.get(name).ok_or_else(|| CompileError {
                    message: format!("unknown function '{name}'"),
                    line: *line,
                })?;
                if args.len() != n_params {
                    return self.err(
                        format!("'{name}' takes {n_params} arguments, got {}", args.len()),
                        *line,
                    );
                }
                if n_rets != 1 {
                    return self.err(
                        format!("'{name}' returns {n_rets} values; only single-value calls may appear in expressions"),
                        *line,
                    );
                }
                let argv: Vec<Operand> =
                    args.iter().map(|a| self.expr(a)).collect::<Result<_, _>>()?;
                self.fb.call(id, &argv, 1)[0]
            }
        })
    }

    /// Compiles a block with `let`-scoping: names introduced by `let`
    /// revert to their previous binding (if any) at block exit, so a
    /// body-local shadow never leaks into a loop's carried chain or an
    /// `if`'s merges.
    fn compile_block(&mut self, stmts: &[Stmt], in_if: bool) -> Result<(), CompileError> {
        let mut saved: Vec<(String, Option<Operand>)> = Vec::new();
        for s in stmts {
            if let Stmt::Let { name, .. } = s {
                saved.push((name.clone(), self.env.get(name).copied()));
            }
            self.stmt(s, in_if)?;
        }
        for (n, old) in saved.into_iter().rev() {
            match old {
                Some(v) => self.env.insert(n, v),
                None => self.env.remove(&n),
            };
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, in_if: bool) -> Result<(), CompileError> {
        match s {
            Stmt::Let { name, value, .. } => {
                let v = self.expr(value)?;
                self.env.insert(name.clone(), v);
            }
            Stmt::Assign { name, value, line } => {
                if !self.env.contains_key(name) {
                    return self.err(
                        format!("assignment to undeclared variable '{name}' (use 'let')"),
                        *line,
                    );
                }
                let v = self.expr(value)?;
                self.env.insert(name.clone(), v);
            }
            Stmt::Store { addr, value, .. } => {
                let a = self.expr(addr)?;
                let v = self.expr(value)?;
                self.fb.store(a, v);
            }
            Stmt::FetchAdd { addr, value, .. } => {
                let a = self.expr(addr)?;
                let v = self.expr(value)?;
                self.fb.store_add(a, v);
            }
            Stmt::While { cond, body, line } => {
                if in_if {
                    return self.err("loops inside 'if' branches are not supported", *line);
                }
                self.compile_while(cond, body, *line)?;
            }
            Stmt::If { cond, then_body, else_body, line } => {
                if let Some(l) =
                    contains_loop_or_call(then_body).or_else(|| contains_loop_or_call(else_body))
                {
                    return self.err("loops and calls inside 'if' branches are not supported", l);
                }
                self.compile_if(cond, then_body, else_body, *line)?;
            }
            Stmt::Return { line, .. } => {
                return self.err("'return' must be the last statement of a function", *line);
            }
            Stmt::CallStmt { name, args, line } => {
                if in_if {
                    return self.err("calls inside 'if' branches are not supported", *line);
                }
                let &(id, n_params, n_rets) = self.sigs.get(name).ok_or_else(|| CompileError {
                    message: format!("unknown function '{name}'"),
                    line: *line,
                })?;
                if args.len() != n_params {
                    return self.err(
                        format!("'{name}' takes {n_params} arguments, got {}", args.len()),
                        *line,
                    );
                }
                let argv: Vec<Operand> =
                    args.iter().map(|a| self.expr(a)).collect::<Result<_, _>>()?;
                self.fb.call(id, &argv, n_rets);
            }
        }
        Ok(())
    }

    /// Loop compilation: every outer name the loop touches becomes a carried
    /// value; the loop exports each carried value's at-test state back to
    /// the enclosing scope.
    fn compile_while(&mut self, cond: &Expr, body: &[Stmt], line: u32) -> Result<(), CompileError> {
        let mut touched = Vec::new();
        collect_names(
            std::slice::from_ref(&Stmt::While { cond: cond.clone(), body: body.to_vec(), line }),
            &mut touched,
        );
        let mut names: Vec<String> =
            touched.into_iter().filter(|n| self.env.contains_key(n)).collect();
        names.sort();
        names.dedup();

        let inits: Vec<Operand> = names.iter().map(|n| self.env[n]).collect();
        self.loop_counter += 1;
        let label = format!("{}_L{}_{}", self.fn_name, line, self.loop_counter);
        let carried = self.fb.begin_loop_vec(&label, inits);
        for (n, &c) in names.iter().zip(&carried) {
            self.env.insert(n.clone(), c);
        }
        let c = self.expr(cond)?;
        self.fb.begin_body(c);
        // Mutations of carried names persist into `next`; `let`s are
        // body-local (compile_block restores them).
        self.compile_block(body, false)?;
        let next: Vec<Operand> = names.iter().map(|n| self.env[n]).collect();
        let exits = self.fb.end_loop_vec(next, carried.clone());
        for (n, &e) in names.iter().zip(&exits) {
            self.env.insert(n.clone(), e);
        }
        Ok(())
    }

    /// Conditional compilation: names assigned in either branch merge.
    fn compile_if(
        &mut self,
        cond: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
        _line: u32,
    ) -> Result<(), CompileError> {
        let c = self.expr(cond)?;
        let mut assigned = Vec::new();
        assigned_names(then_body, &mut assigned);
        assigned_names(else_body, &mut assigned);
        let mut names: Vec<String> =
            assigned.into_iter().filter(|n| self.env.contains_key(n)).collect();
        names.sort();
        names.dedup();

        let snapshot = self.env.clone();
        self.fb.begin_if(c);
        self.compile_block(then_body, true)?;
        let then_vals: Vec<Operand> = names.iter().map(|n| self.env[n]).collect();
        self.env = snapshot.clone();
        self.fb.begin_else();
        self.compile_block(else_body, true)?;
        let else_vals: Vec<Operand> = names.iter().map(|n| self.env[n]).collect();
        self.env = snapshot;
        let merges: Vec<(Operand, Operand)> = then_vals.into_iter().zip(else_vals).collect();
        let merged = self.fb.end_if_vec(merges);
        for (n, &m) in names.iter().zip(&merged) {
            self.env.insert(n.clone(), m);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, MemoryImage};

    fn run(src: &str, consts: &[(&str, i64)], args: &[i64]) -> Vec<i64> {
        let p = compile(src, consts).unwrap_or_else(|e| panic!("{e}"));
        let mut mem = MemoryImage::new();
        interp::run(&p, &mut mem, args).unwrap().returns
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("fn main() { return 1 + 2 * 3 - 4 / 2; }", &[], &[]), vec![5]);
        assert_eq!(run("fn main() { return (1 + 2) * 3; }", &[], &[]), vec![9]);
        assert_eq!(run("fn main() { return 7 % 3 + (1 << 4) + (-8 >> 1); }", &[], &[]), vec![13]);
        assert_eq!(run("fn main() { return 1 < 2 && 3 != 4; }", &[], &[]), vec![1]);
        assert_eq!(run("fn main() { return !5 || 0; }", &[], &[]), vec![0]);
        assert_eq!(run("fn main(x) { return -x; }", &[], &[9]), vec![-9]);
    }

    #[test]
    fn while_loop_infers_carried_vars() {
        let src = "
            fn main(n) {
                let i = 0;
                let acc = 0;
                while (i < n) {
                    acc = acc + i * i;
                    i = i + 1;
                }
                return acc;
            }";
        let expect: i64 = (0..10).map(|i| i * i).sum();
        assert_eq!(run(src, &[], &[10]), vec![expect]);
        assert_eq!(run(src, &[], &[0]), vec![0]); // zero-trip
    }

    #[test]
    fn nested_while_with_invariants() {
        let src = "
            fn main(n) {
                let total = 0;
                let i = 0;
                while (i < n) {
                    let j = 0;
                    while (j < i) {
                        total = total + i * j;
                        j = j + 1;
                    }
                    i = i + 1;
                }
                return total;
            }";
        let expect: i64 = (0..8).flat_map(|i| (0..i).map(move |j| i * j)).sum();
        assert_eq!(run(src, &[], &[8]), vec![expect]);
    }

    #[test]
    fn if_else_merges_assignments() {
        let src = "
            fn main(x) {
                let y = 0;
                if (x > 0) { y = x * 2; } else { y = -x; }
                return y;
            }";
        assert_eq!(run(src, &[], &[7]), vec![14]);
        assert_eq!(run(src, &[], &[-3]), vec![3]);
    }

    #[test]
    fn if_without_else_keeps_old_value() {
        let src = "
            fn main(x) {
                let y = 100;
                if (x > 0) { y = x; }
                return y;
            }";
        assert_eq!(run(src, &[], &[5]), vec![5]);
        assert_eq!(run(src, &[], &[-5]), vec![100]);
    }

    #[test]
    fn let_shadowing_in_loop_body_is_block_scoped() {
        let src = "
            fn main() {
                let x = 10;
                let i = 0;
                while (i < 3) {
                    let x = 999; // body-local shadow; must not leak
                    x = x + 1;   // mutates the shadow
                    i = i + 1;
                }
                return x;
            }";
        assert_eq!(run(src, &[], &[]), vec![10]);
    }

    #[test]
    fn memory_builtins_and_consts() {
        let mut mem = MemoryImage::new();
        let arr = mem.alloc_init("arr", &[5, 7, 11]);
        let out = mem.alloc("out", 1);
        let src = "
            fn main() {
                let s = load(ARR) + load(ARR + 1) + load(ARR + 2);
                store(OUT, s);
                fetch_add(OUT, 100);
                return s;
            }";
        let p = compile(src, &[("ARR", arr.base_const()), ("OUT", out.base_const())]).unwrap();
        let r = interp::run(&p, &mut mem, &[]).unwrap();
        assert_eq!(r.returns, vec![23]);
        assert_eq!(mem.slice(out), &[123]);
    }

    #[test]
    fn calls_between_functions() {
        let src = "
            fn square(x) { return x * x; }
            fn main(a) {
                let s = square(a) + square(a + 1);
                return s;
            }";
        assert_eq!(run(src, &[], &[3]), vec![9 + 16]);
    }

    #[test]
    fn multi_return_via_call_stmt() {
        // A void function used for side effects.
        let mut mem = MemoryImage::new();
        let cell = mem.alloc("cell", 1);
        let src = "
            fn bump(v) { fetch_add(CELL, v); }
            fn main() {
                bump(4);
                bump(5);
                return 0;
            }";
        let p = compile(src, &[("CELL", cell.base_const())]).unwrap();
        interp::run(&p, &mut mem, &[]).unwrap();
        assert_eq!(mem.slice(cell), &[9]);
    }

    #[test]
    fn dmv_in_tyrlang_matches_the_dsl_kernel_shape() {
        // The paper's running example, written as source text.
        let m = 9usize;
        let n = 7usize;
        let mut mem = MemoryImage::new();
        let a: Vec<i64> = (0..m * n).map(|k| (k as i64 % 13) - 6).collect();
        let x: Vec<i64> = (0..n).map(|k| (k as i64 % 5) - 2).collect();
        let a_ref = mem.alloc_init("A", &a);
        let x_ref = mem.alloc_init("x", &x);
        let y_ref = mem.alloc("y", m);
        let src = "
            fn main() {
                let i = 0;
                while (i < M) {
                    let w = 0;
                    let j = 0;
                    while (j < N) {
                        w = w + load(A + i * N + j) * load(X + j);
                        j = j + 1;
                    }
                    store(Y + i, w);
                    i = i + 1;
                }
                return 0;
            }";
        let p = compile(
            src,
            &[
                ("M", m as i64),
                ("N", n as i64),
                ("A", a_ref.base_const()),
                ("X", x_ref.base_const()),
                ("Y", y_ref.base_const()),
            ],
        )
        .unwrap();
        interp::run(&p, &mut mem, &[]).unwrap();
        let expect: Vec<i64> = (0..m).map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum()).collect();
        assert_eq!(mem.slice(y_ref), &expect[..]);
    }

    #[test]
    fn good_error_messages() {
        let e = compile("fn main() { y = 3; return 0; }", &[]).unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
        let e = compile("fn main() { return zz; }", &[]).unwrap_err();
        assert!(e.message.contains("unknown name 'zz'"), "{e}");
        let e = compile("fn main() { return f(1); }", &[]).unwrap_err();
        assert!(e.message.contains("unknown function"), "{e}");
        let e = compile("fn f(a, b) { return a; } fn main() { return f(1); }", &[]).unwrap_err();
        assert!(e.message.contains("takes 2 arguments"), "{e}");
        let e = compile("fn main(x) { if (x) { while (x > 0) { x = x - 1; } } return x; }", &[])
            .unwrap_err();
        assert!(e.message.contains("loops"), "{e}");
        let e = compile("fn main() { return 1; return 2; }", &[]).unwrap_err();
        assert!(e.message.contains("last statement"), "{e}");
        let e = compile("fn f() { return 1; } fn f() { return 2; }", &[]).unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn impure_while_condition_is_rejected_via_validation() {
        let e =
            compile("fn main() { let i = 0; while (load(i) > 0) { i = i + 1; } return i; }", &[])
                .unwrap_err();
        assert!(e.message.contains("pure"), "{e}");
    }
}
