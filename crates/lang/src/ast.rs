//! Abstract syntax tree for `tyr-lang`.

/// A parsed program: one or more functions.
#[derive(Debug, Clone)]
pub struct Ast {
    /// Functions in source order.
    pub funcs: Vec<FnDecl>,
}

/// A function declaration.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name (`main` is the entry point).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the declaration.
    pub line: u32,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `name = expr;`
    Assign {
        /// Variable name (must already be declared).
        name: String,
        /// New value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `store(addr, value);`
    Store {
        /// Word address.
        addr: Expr,
        /// Value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `fetch_add(addr, value);` — atomic accumulate.
    FetchAdd {
        /// Word address.
        addr: Expr,
        /// Addend.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `while (cond) { ... }`
    While {
        /// Continue condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `if (cond) { ... } else { ... }` (else optional).
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `return e1, e2, ...;` — only as the last statement of a function.
    Return {
        /// Returned values.
        values: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// A bare call used for its side effects: `f(a, b);`
    CallStmt {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
}

/// Binary operators (all map to a `tyr_ir::AluOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (bitwise on 0/1 operands; both sides are evaluated)
    AndAnd,
    /// `||` (bitwise on 0/1 operands; both sides are evaluated)
    OrOr,
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable or named constant reference.
    Var(String, u32),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical not `!e` (produces 0/1).
    Not(Box<Expr>),
    /// `load(addr)`.
    Load(Box<Expr>, u32),
    /// Function call `f(args...)` used as a single value.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
}
